#include "topology/graph.hpp"

#include <algorithm>
#include <queue>

#include "snapshot/snapshot.hpp"

namespace ddp::topology {

Graph::Graph(std::size_t node_count)
    : adj_(node_count), out_slots_(node_count), in_slots_(node_count),
      active_(node_count, 1), active_count_(node_count) {}

PeerId Graph::add_node() {
  adj_.emplace_back();
  out_slots_.emplace_back();
  in_slots_.emplace_back();
  active_.push_back(1);
  ++active_count_;
  return static_cast<PeerId>(adj_.size() - 1);
}

void Graph::set_active(PeerId u, bool active) {
  if (static_cast<bool>(active_[u]) == active) return;
  if (!active) {
    isolate(u);
    active_[u] = 0;
    --active_count_;
  } else {
    active_[u] = 1;
    ++active_count_;
  }
}

bool Graph::add_edge(PeerId u, PeerId v) {
  if (u == v || u >= adj_.size() || v >= adj_.size()) return false;
  // Offline peers hold no connections; deactivation tears edges down and
  // nothing may re-attach to an inactive peer.
  if (!active_[u] || !active_[v]) return false;
  if (has_edge(u, v)) return false;
  const auto [suv, svu] = index_.acquire_pair(u, v);
  adj_[u].push_back(v);
  out_slots_[u].push_back(suv);
  in_slots_[u].push_back(svu);
  adj_[v].push_back(u);
  out_slots_[v].push_back(svu);
  in_slots_[v].push_back(suv);
  ++edge_count_;
  return true;
}

bool Graph::remove_edge(PeerId u, PeerId v) {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  auto& au = adj_[u];
  const auto iu = std::find(au.begin(), au.end(), v);
  if (iu == au.end()) return false;
  const auto pu = static_cast<std::size_t>(iu - au.begin());
  // Releasing one direction releases both (and retires any EdgeMap state
  // either direction carried).
  index_.release(out_slots_[u][pu]);
  // Swap-erase: neighbour order carries no meaning.
  *iu = au.back();
  au.pop_back();
  out_slots_[u][pu] = out_slots_[u].back();
  out_slots_[u].pop_back();
  in_slots_[u][pu] = in_slots_[u].back();
  in_slots_[u].pop_back();
  auto& av = adj_[v];
  const auto iv = std::find(av.begin(), av.end(), u);
  const auto pv = static_cast<std::size_t>(iv - av.begin());
  *iv = av.back();
  av.pop_back();
  out_slots_[v][pv] = out_slots_[v].back();
  out_slots_[v].pop_back();
  in_slots_[v][pv] = in_slots_[v].back();
  in_slots_[v].pop_back();
  --edge_count_;
  return true;
}

std::uint32_t Graph::edge_slot(PeerId u, PeerId v) const noexcept {
  if (u >= adj_.size() || v >= adj_.size()) return EdgeIndex::kInvalidSlot;
  // Scan the smaller adjacency; reverse() recovers the asked direction
  // when the hit lands on v's side.
  if (adj_[u].size() <= adj_[v].size()) {
    const auto& au = adj_[u];
    for (std::size_t i = 0; i < au.size(); ++i) {
      if (au[i] == v) return out_slots_[u][i];
    }
    return EdgeIndex::kInvalidSlot;
  }
  const auto& av = adj_[v];
  for (std::size_t i = 0; i < av.size(); ++i) {
    if (av[i] == u) return index_.reverse(out_slots_[v][i]);
  }
  return EdgeIndex::kInvalidSlot;
}

bool Graph::has_edge(PeerId u, PeerId v) const noexcept {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  const auto& smaller = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const PeerId target = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

void Graph::isolate(PeerId u) {
  // Copy: remove_edge mutates adj_[u].
  const std::vector<PeerId> nbrs = adj_[u];
  for (PeerId v : nbrs) remove_edge(u, v);
}

PeerId Graph::random_active_node(util::Rng& rng, PeerId exclude) const {
  const std::size_t n = adj_.size();
  if (active_count_ == 0) return kInvalidPeer;
  if (active_count_ == 1 && exclude != kInvalidPeer && active_[exclude]) {
    return kInvalidPeer;
  }
  // Rejection sampling: active fraction is high throughout the simulations.
  for (int attempts = 0; attempts < 4096; ++attempts) {
    const auto u = static_cast<PeerId>(rng.below(static_cast<std::uint32_t>(n)));
    if (active_[u] && u != exclude) return u;
  }
  for (PeerId u = 0; u < n; ++u) {
    if (active_[u] && u != exclude) return u;
  }
  return kInvalidPeer;
}

PeerId Graph::random_active_node_by_degree(util::Rng& rng, PeerId exclude) const {
  // Rejection sampling against the current max degree; with power-law-ish
  // degree sequences this stays cheap and avoids maintaining a prefix sum.
  std::size_t max_deg = 0;
  for (PeerId u = 0; u < adj_.size(); ++u) {
    if (active_[u]) max_deg = std::max(max_deg, adj_[u].size());
  }
  const double ceiling = static_cast<double>(max_deg) + 1.0;
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const PeerId u = random_active_node(rng, exclude);
    if (u == kInvalidPeer) return kInvalidPeer;
    const double w = static_cast<double>(adj_[u].size()) + 1.0;
    if (rng.uniform() * ceiling <= w) return u;
  }
  return random_active_node(rng, exclude);
}

int Graph::hop_distance(PeerId u, PeerId v) const {
  if (u >= adj_.size() || v >= adj_.size() || !active_[u] || !active_[v]) return -1;
  if (u == v) return 0;
  std::vector<int> dist(adj_.size(), -1);
  std::queue<PeerId> q;
  dist[u] = 0;
  q.push(u);
  while (!q.empty()) {
    const PeerId x = q.front();
    q.pop();
    for (PeerId y : adj_[x]) {
      if (!active_[y] || dist[y] >= 0) continue;
      dist[y] = dist[x] + 1;
      if (y == v) return dist[y];
      q.push(y);
    }
  }
  return -1;
}

bool Graph::is_connected_over_active() const {
  PeerId start = kInvalidPeer;
  std::size_t with_edges = 0;
  for (PeerId u = 0; u < adj_.size(); ++u) {
    if (active_[u] && !adj_[u].empty()) {
      ++with_edges;
      if (start == kInvalidPeer) start = u;
    }
  }
  if (with_edges <= 1) return true;
  std::vector<char> seen(adj_.size(), 0);
  std::queue<PeerId> q;
  seen[start] = 1;
  q.push(start);
  std::size_t visited = 1;
  while (!q.empty()) {
    const PeerId x = q.front();
    q.pop();
    for (PeerId y : adj_[x]) {
      if (!active_[y] || seen[y]) continue;
      seen[y] = 1;
      ++visited;
      q.push(y);
    }
  }
  return visited == with_edges;
}

double Graph::average_degree() const noexcept {
  if (active_count_ == 0) return 0.0;
  std::size_t sum = 0;
  for (PeerId u = 0; u < adj_.size(); ++u) {
    if (active_[u]) sum += adj_[u].size();
  }
  return static_cast<double>(sum) / static_cast<double>(active_count_);
}

void Graph::save(snapshot::Writer& w) const {
  w.size(adj_.size());
  for (std::size_t u = 0; u < adj_.size(); ++u) {
    w.size(adj_[u].size());
    for (std::size_t i = 0; i < adj_[u].size(); ++i) {
      w.u32(adj_[u][i]);
      w.u32(out_slots_[u][i]);
    }
    w.boolean(active_[u] != 0);
  }
  w.u64(edge_count_);
  w.u64(active_count_);
  index_.save(w);
}

void Graph::load(snapshot::Reader& r) {
  constexpr std::size_t kMaxNodes = 1u << 24;
  const std::size_t n = r.size(kMaxNodes);
  adj_.assign(n, {});
  out_slots_.assign(n, {});
  in_slots_.assign(n, {});
  active_.assign(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    const std::size_t deg = r.size(n);
    adj_[u].resize(deg);
    out_slots_[u].resize(deg);
    for (std::size_t i = 0; i < deg; ++i) {
      adj_[u][i] = r.u32();
      out_slots_[u][i] = r.u32();
    }
    active_[u] = r.boolean() ? 1 : 0;
  }
  edge_count_ = static_cast<std::size_t>(r.u64());
  active_count_ = static_cast<std::size_t>(r.u64());
  index_.load(r);  // validates its own consistency
  // Cross-check adjacency against the restored index: every directed slot
  // must name the stored endpoints, and the counters must add up.
  std::size_t active_scan = 0;
  std::size_t degree_sum = 0;
  for (std::size_t u = 0; u < n; ++u) {
    if (active_[u]) ++active_scan;
    degree_sum += adj_[u].size();
    for (std::size_t i = 0; i < adj_[u].size(); ++i) {
      const PeerId v = adj_[u][i];
      const std::uint32_t s = out_slots_[u][i];
      if (v >= n || !index_.live(s) || index_.from(s) != u || index_.to(s) != v) {
        throw snapshot::SnapshotError(
            "restored graph adjacency disagrees with the edge index");
      }
    }
  }
  if (active_scan != active_count_ || degree_sum != 2 * edge_count_ ||
      index_.live_count() != 2 * edge_count_) {
    throw snapshot::SnapshotError("restored graph counters do not add up");
  }
  // Rebuild the materialized in-link lists from the validated out-slots
  // (the snapshot format carries only the out direction; the reverse of a
  // consistent index reconstructs the rest exactly).
  for (std::size_t u = 0; u < n; ++u) {
    in_slots_[u].resize(out_slots_[u].size());
    for (std::size_t i = 0; i < out_slots_[u].size(); ++i) {
      in_slots_[u][i] = index_.reverse(out_slots_[u][i]);
    }
  }
}

std::vector<std::size_t> Graph::degree_histogram() const {
  std::vector<std::size_t> hist;
  for (PeerId u = 0; u < adj_.size(); ++u) {
    if (!active_[u]) continue;
    const std::size_t d = adj_[u].size();
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

}  // namespace ddp::topology
