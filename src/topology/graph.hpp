#pragma once

/// \file graph.hpp
/// Dynamic undirected overlay graph. Peers are dense PeerIds; adjacency is
/// per-node neighbour vectors (typical degree ~6, so linear membership
/// scans beat hash sets in both time and memory). The graph supports the
/// churn operations the simulation needs: edge insertion/removal, node
/// activation/deactivation, and queries used by the engines (degree,
/// neighbour spans, connectivity).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "topology/edge_index.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::topology {

class Graph {
 public:
  explicit Graph(std::size_t node_count = 0);

  std::size_t node_count() const noexcept { return adj_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  /// Grow the node table (new nodes start active and isolated).
  PeerId add_node();

  /// Nodes can be deactivated (peer offline) without renumbering; their
  /// edges are removed. Reactivation brings them back isolated.
  void set_active(PeerId u, bool active);
  bool is_active(PeerId u) const noexcept { return active_[u]; }
  std::size_t active_count() const noexcept { return active_count_; }

  /// Add/remove an undirected edge. Adding an existing edge, a self-loop,
  /// or an edge touching an inactive peer is a no-op returning false;
  /// removing a missing edge returns false.
  bool add_edge(PeerId u, PeerId v);
  bool remove_edge(PeerId u, PeerId v);
  bool has_edge(PeerId u, PeerId v) const noexcept;

  std::size_t degree(PeerId u) const noexcept { return adj_[u].size(); }
  std::span<const PeerId> neighbors(PeerId u) const noexcept {
    return {adj_[u].data(), adj_[u].size()};
  }

  /// The dense directed-edge slot index. Every add_edge acquires a slot
  /// pair, every remove_edge releases it — all edge teardown funnels
  /// through here, so the engines' EdgeMaps never leak a direction.
  const EdgeIndex& edge_index() const noexcept { return index_; }

  /// Directed slots parallel to neighbors(u): out_slots(u)[i] is the slot
  /// of the edge u -> neighbors(u)[i].
  std::span<const std::uint32_t> out_slots(PeerId u) const noexcept {
    return {out_slots_[u].data(), out_slots_[u].size()};
  }

  /// In-link slots parallel to neighbors(u): in_slots(u)[i] is the slot of
  /// the edge neighbors(u)[i] -> u, i.e. reverse(out_slots(u)[i]) held
  /// materialized so the per-tick arrival gather reads its in-links
  /// straight from one contiguous list instead of chasing the reverse
  /// indirection through the slot table.
  std::span<const std::uint32_t> in_slots(PeerId u) const noexcept {
    return {in_slots_[u].data(), in_slots_[u].size()};
  }

  /// Slot of the directed edge u -> v, or EdgeIndex::kInvalidSlot if the
  /// edge does not exist. Linear in min-degree, like has_edge.
  std::uint32_t edge_slot(PeerId u, PeerId v) const noexcept;

  /// Remove all edges of u (keeps it active).
  void isolate(PeerId u);

  /// A uniformly random *active* node, excluding `exclude` (pass
  /// kInvalidPeer for no exclusion). Returns kInvalidPeer if none exists.
  PeerId random_active_node(util::Rng& rng, PeerId exclude = kInvalidPeer) const;

  /// A random active node chosen with probability proportional to
  /// degree + 1 (preferential attachment for churn rewiring).
  PeerId random_active_node_by_degree(util::Rng& rng,
                                      PeerId exclude = kInvalidPeer) const;

  /// Hop distance u -> v over active nodes (BFS); negative if unreachable.
  int hop_distance(PeerId u, PeerId v) const;

  /// True when all active nodes with at least one edge form one component.
  bool is_connected_over_active() const;

  /// Sum of degrees over active nodes / number of active nodes.
  double average_degree() const noexcept;

  /// Degree histogram (index = degree) over active nodes.
  std::vector<std::size_t> degree_histogram() const;

  /// Serialize the full graph (adjacency, directed slot table, activity
  /// flags, edge index) into the writer's open section.
  void save(snapshot::Writer& w) const;

  /// Restore state saved by save(). Replaces all current state; throws
  /// SnapshotError when adjacency, slot table and edge index disagree.
  void load(snapshot::Reader& r);

 private:
  std::vector<std::vector<PeerId>> adj_;
  /// Parallel to adj_: out_slots_[u][i] is the slot of u -> adj_[u][i].
  std::vector<std::vector<std::uint32_t>> out_slots_;
  /// Parallel to adj_: in_slots_[u][i] is the slot of adj_[u][i] -> u.
  std::vector<std::vector<std::uint32_t>> in_slots_;
  EdgeIndex index_;
  std::vector<char> active_;
  std::size_t edge_count_ = 0;
  std::size_t active_count_ = 0;
};

}  // namespace ddp::topology
