#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace ddp::util {

bool is_truthy(std::string_view v) noexcept {
  std::string lower(v);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

bool full_scale_requested() noexcept {
  const char* env = std::getenv("DDP_FULL");
  return env != nullptr && is_truthy(env);
}

std::optional<std::int64_t> env_int(const char* name) noexcept {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> env_double(const char* name) noexcept {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (errno != 0 || end == env || *end != '\0') return std::nullopt;
  return v;
}

std::uint64_t env_seed(std::uint64_t fallback) noexcept {
  if (auto v = env_int("DDP_SEED")) return static_cast<std::uint64_t>(*v);
  return fallback;
}

std::uint32_t env_trials(std::uint32_t fallback) noexcept {
  if (auto v = env_int("DDP_TRIALS"); v && *v > 0) {
    return static_cast<std::uint32_t>(*v);
  }
  return fallback;
}

unsigned env_jobs(unsigned fallback) noexcept {
  if (auto v = env_int("DDP_JOBS"); v && *v >= 0) {
    return static_cast<unsigned>(*v);
  }
  return fallback;
}

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      positional_.push_back(arg);
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Options::has(std::string_view key) const { return kv_.find(key) != kv_.end(); }

std::string Options::get(std::string_view key, std::string fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

double Options::get(std::string_view key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return fallback;
  return v;
}

std::int64_t Options::get(std::string_view key, std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return fallback;
  return static_cast<std::int64_t>(v);
}

bool Options::get(std::string_view key, bool fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : is_truthy(it->second);
}

std::string Options::summary() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : kv_) {
    if (!first) os << ' ';
    os << k << '=' << v;
    first = false;
  }
  return os.str();
}

}  // namespace ddp::util
