#pragma once

/// \file config.hpp
/// Runtime configuration helpers shared by benches and examples: environment
/// switches (DDP_FULL for paper-scale runs, DDP_SEED, DDP_TRIALS) and a tiny
/// "key=value" command-line option parser so every example binary accepts
/// consistent overrides without pulling in a CLI dependency.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ddp::util {

/// True when DDP_FULL is set to a truthy value ("1", "true", "yes", "on").
/// Benches use it to switch from laptop-scale to the paper's full scale
/// (2,000 peers / 1,000,000 queries).
bool full_scale_requested() noexcept;

/// Master seed for a run: DDP_SEED if set and parseable, else `fallback`.
std::uint64_t env_seed(std::uint64_t fallback = 20070710) noexcept;

/// Number of independent trials: DDP_TRIALS if set, else `fallback`.
std::uint32_t env_trials(std::uint32_t fallback) noexcept;

/// Parallel sweep workers: DDP_JOBS if set, else `fallback`. The value 0
/// means "one per hardware thread" (resolved by util::resolve_jobs).
unsigned env_jobs(unsigned fallback) noexcept;

/// Read an arbitrary numeric environment override.
std::optional<double> env_double(const char* name) noexcept;
std::optional<std::int64_t> env_int(const char* name) noexcept;

/// Parsed "key=value" command-line options (argv entries not in that shape
/// are collected as positional arguments).
class Options {
 public:
  Options(int argc, const char* const* argv);

  bool has(std::string_view key) const;
  std::string get(std::string_view key, std::string fallback) const;
  double get(std::string_view key, double fallback) const;
  std::int64_t get(std::string_view key, std::int64_t fallback) const;
  bool get(std::string_view key, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Render "key=value ..." for run provenance lines.
  std::string summary() const;

 private:
  std::map<std::string, std::string, std::less<>> kv_;
  std::vector<std::string> positional_;
};

/// Truthiness used by all boolean switches.
bool is_truthy(std::string_view v) noexcept;

}  // namespace ddp::util
