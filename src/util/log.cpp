#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ddp::util {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

LogLevel level_from_env() {
  const char* env = std::getenv("DDP_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (const auto parsed = parse_log_level(env)) return *parsed;
  // Garbage in the environment should not silence diagnostics — complain
  // once and keep the default.
  std::fprintf(stderr,
               "[warn] DDP_LOG=\"%s\" is not a log level "
               "(debug|info|warn|error|off); using warn\n",
               env);
  return LogLevel::kWarn;
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

LogHook& hook_store() {
  static LogHook hook;
  return hook;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void append_field(std::string& out, const LogField& f) {
  out += ' ';
  out.append(f.key.data(), f.key.size());
  out += '=';
  char buf[32];
  // Integral values print without a trailing ".000000"; others keep %g.
  const auto as_ll = static_cast<long long>(f.value);
  if (static_cast<double>(as_ll) == f.value) {
    std::snprintf(buf, sizeof(buf), "%lld", as_ll);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", f.value);
  }
  out += buf;
}

void emit(LogLevel level, std::string_view formatted) {
  // One fprintf call -> one write; interleaving-safe enough for diagnostics.
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(formatted.size()), formatted.data());
  if (const auto& hook = hook_store()) hook(level, formatted);
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  if (iequals(name, "debug")) return LogLevel::kDebug;
  if (iequals(name, "info")) return LogLevel::kInfo;
  if (iequals(name, "warn")) return LogLevel::kWarn;
  if (iequals(name, "error")) return LogLevel::kError;
  if (iequals(name, "off")) return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) noexcept {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void set_log_hook(LogHook hook) { hook_store() = std::move(hook); }

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  emit(level, message);
}

void log(LogLevel level, std::string_view message,
         std::initializer_list<LogField> fields) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::string line(message);
  for (const auto& f : fields) append_field(line, f);
  emit(level, line);
}

}  // namespace ddp::util
