#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ddp::util {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("DDP_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // One fprintf call -> one write; interleaving-safe enough for diagnostics.
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace ddp::util
