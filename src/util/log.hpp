#pragma once

/// \file log.hpp
/// Minimal leveled logging. Simulations are single-threaded per run, so the
/// logger keeps no locks; the experiment harness may run trials on worker
/// threads, so emission itself is a single atomic stream write.
///
/// Messages may carry a structured key=value suffix (log fields), and an
/// optional process-wide hook observes every emitted line — the obs layer
/// uses it to mirror log lines into the trace stream.

#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace ddp::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parse a level name ("debug", "info", "warn", "error", "off"),
/// case-insensitively. Unknown or empty spellings return nullopt — callers
/// decide the fallback.
std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;

/// Global threshold; messages below it are dropped. Default kWarn so library
/// consumers see problems but benches stay quiet. Honors the DDP_LOG
/// environment variable (any case) at first use; an unparseable value earns
/// one warning line and falls back to kWarn instead of silently misbehaving.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// One structured payload entry appended to a log line as " key=value".
struct LogField {
  std::string_view key;
  double value = 0.0;
};

/// Emit one line: "[level] message key=value ...\n" to stderr.
void log(LogLevel level, std::string_view message,
         std::initializer_list<LogField> fields);
void log(LogLevel level, std::string_view message);

/// Observe every emitted (above-threshold) line. The hook receives the
/// level and the fully formatted message including any key=value suffix;
/// stderr emission is unaffected. Pass a default-constructed function to
/// uninstall. Install from the main thread before spawning workers.
using LogHook = std::function<void(LogLevel, std::string_view)>;
void set_log_hook(LogHook hook);

inline void log_debug(std::string_view m) { log(LogLevel::kDebug, m); }
inline void log_info(std::string_view m) { log(LogLevel::kInfo, m); }
inline void log_warn(std::string_view m) { log(LogLevel::kWarn, m); }
inline void log_error(std::string_view m) { log(LogLevel::kError, m); }

}  // namespace ddp::util
