#pragma once

/// \file log.hpp
/// Minimal leveled logging. Simulations are single-threaded per run, so the
/// logger keeps no locks; the experiment harness may run trials on worker
/// threads, so emission itself is a single atomic stream write.

#include <string>
#include <string_view>

namespace ddp::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default kWarn so library
/// consumers see problems but benches stay quiet. Honors the DDP_LOG
/// environment variable ("debug", "info", "warn", "error", "off") at first use.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line: "[level] message\n" to stderr.
void log(LogLevel level, std::string_view message);

inline void log_debug(std::string_view m) { log(LogLevel::kDebug, m); }
inline void log_info(std::string_view m) { log(LogLevel::kInfo, m); }
inline void log_warn(std::string_view m) { log(LogLevel::kWarn, m); }
inline void log_error(std::string_view m) { log(LogLevel::kError, m); }

}  // namespace ddp::util
