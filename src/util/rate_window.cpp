#include "util/rate_window.hpp"

#include <cmath>
#include <stdexcept>

namespace ddp::util {

RateWindow::RateWindow(SimTime window, std::size_t buckets)
    : window_(window),
      bucket_len_(window / static_cast<double>(buckets)),
      buckets_(buckets, 0.0) {
  if (window <= 0.0 || buckets == 0) {
    throw std::invalid_argument("RateWindow: window and buckets must be positive");
  }
}

void RateWindow::advance(SimTime t) noexcept {
  const auto target = static_cast<std::int64_t>(std::floor(t / bucket_len_));
  if (!started_) {
    head_index_ = target;
    started_ = true;
    return;
  }
  if (target <= head_index_) return;
  std::int64_t steps = target - head_index_;
  const auto n = static_cast<std::int64_t>(buckets_.size());
  if (steps >= n) {
    // Entire window expired.
    for (double& b : buckets_) b = 0.0;
    sum_ = 0.0;
    head_index_ = target;
    return;
  }
  while (steps-- > 0) {
    ++head_index_;
    double& slot = buckets_[static_cast<std::size_t>(head_index_ % n)];
    sum_ -= slot;
    slot = 0.0;
  }
  if (sum_ < 0.0) sum_ = 0.0;  // FP hygiene after many add/expire cycles
}

void RateWindow::add(SimTime t, double count) noexcept {
  advance(t);
  const auto n = static_cast<std::int64_t>(buckets_.size());
  buckets_[static_cast<std::size_t>(head_index_ % n)] += count;
  sum_ += count;
}

void RateWindow::add_at(SimTime now, SimTime when, double count) noexcept {
  advance(now);
  const auto n = static_cast<std::int64_t>(buckets_.size());
  auto target = static_cast<std::int64_t>(std::floor(when / bucket_len_));
  if (target > head_index_) target = head_index_;  // clock skew: clamp to now
  if (target < 0 || head_index_ - target >= n) return;  // already expired
  buckets_[static_cast<std::size_t>(target % n)] += count;
  sum_ += count;
}

double RateWindow::total(SimTime t) noexcept {
  advance(t);
  return sum_;
}

double RateWindow::per_minute(SimTime t) noexcept {
  return total(t) * (kMinute / window_);
}

double RateWindow::total_at(SimTime t) const noexcept {
  if (!started_) return 0.0;
  const auto target = static_cast<std::int64_t>(std::floor(t / bucket_len_));
  if (target <= head_index_) return sum_;
  const auto n = static_cast<std::int64_t>(buckets_.size());
  if (target - head_index_ >= n) return 0.0;
  // Mirror advance()'s arithmetic exactly: subtract each expiring bucket
  // in ring order, then apply the same FP-hygiene clamp.
  double s = sum_;
  for (std::int64_t idx = head_index_ + 1; idx <= target; ++idx) {
    s -= buckets_[static_cast<std::size_t>(idx % n)];
  }
  return s < 0.0 ? 0.0 : s;
}

double RateWindow::per_minute_at(SimTime t) const noexcept {
  return total_at(t) * (kMinute / window_);
}

void RateWindow::reset() noexcept {
  for (double& b : buckets_) b = 0.0;
  sum_ = 0.0;
  started_ = false;
}

}  // namespace ddp::util
