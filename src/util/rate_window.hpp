#pragma once

/// \file rate_window.hpp
/// Sliding-window event counter: "how many queries did neighbour i send me
/// in the past minute?" — the primitive behind the paper's Out_query(i) /
/// In_query(i) monitors (Sec. 3.2).
///
/// Implemented as a ring of fixed sub-buckets (default 60 x 1 s for a 1-min
/// window) so advancing time and counting are O(1) amortized and memory is
/// constant, which matters with one window per directed neighbour link.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ddp::util {

class RateWindow {
 public:
  /// \param window  window length in seconds (e.g. 60 for per-minute counts)
  /// \param buckets number of sub-buckets; finer buckets -> smoother decay
  explicit RateWindow(SimTime window = 60.0, std::size_t buckets = 60);

  /// Record `count` events at simulated time `t`. Times must be
  /// non-decreasing across calls (simulation time always is).
  void add(SimTime t, double count = 1.0) noexcept;

  /// Record `count` into the bucket holding the PAST time `when`, after
  /// advancing the window to `now`. Dropped silently when `when` has
  /// already expired from the window. This is how a correction that is
  /// discovered late (e.g. a forwarded query proven to be a duplicate
  /// only when it comes back) stays aligned with the event it amends:
  /// both then expire from the window together, instead of the
  /// correction outliving the event and biasing the total.
  void add_at(SimTime now, SimTime when, double count = 1.0) noexcept;

  /// Total events inside [t - window, t]. Also advances the window.
  double total(SimTime t) noexcept;

  /// Events per minute over the window, i.e. total * (60 / window).
  double per_minute(SimTime t) noexcept;

  /// total(t) without advancing: expired buckets are subtracted from the
  /// cached sum in the same order advance() would zero them, so the value
  /// matches the mutable read bit-for-bit. Safe for concurrent reads —
  /// this is what lets DD-POLICE's sharded flag scan run over the packet
  /// engine's monitors (windows then advance only on add()).
  double total_at(SimTime t) const noexcept;

  /// per_minute(t) without advancing; see total_at().
  double per_minute_at(SimTime t) const noexcept;

  SimTime window() const noexcept { return window_; }

  /// Forget everything (used when a link is torn down and re-established).
  void reset() noexcept;

  /// Complete window state, exposed verbatim for checkpointing.
  struct Raw {
    SimTime window = 60.0;
    SimTime bucket_len = 1.0;
    std::vector<double> buckets;
    std::int64_t head_index = 0;
    double sum = 0.0;
    bool started = false;
  };

  Raw raw() const { return {window_, bucket_len_, buckets_, head_index_, sum_, started_}; }

  /// Restore a checkpointed window. Returns false (leaving the window
  /// untouched) when the raw state is structurally invalid.
  bool restore(Raw r) {
    if (r.buckets.empty() || !(r.window > 0.0) || !(r.bucket_len > 0.0)) return false;
    window_ = r.window;
    bucket_len_ = r.bucket_len;
    buckets_ = std::move(r.buckets);
    head_index_ = r.head_index;
    sum_ = r.sum;
    started_ = r.started;
    return true;
  }

 private:
  void advance(SimTime t) noexcept;

  SimTime window_;
  SimTime bucket_len_;
  std::vector<double> buckets_;
  std::int64_t head_index_ = 0;  ///< absolute index of the newest bucket
  double sum_ = 0.0;
  bool started_ = false;
};

}  // namespace ddp::util
