#include "util/rng.hpp"

#include <cmath>

namespace ddp::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_tag(std::string_view tag) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : tag) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept : seed_origin_(seed) {
  std::uint64_t sm = seed;
  state_ = 0;
  inc_ = (splitmix64(sm) ^ stream) | 1u;  // stream selector must be odd
  // Standard PCG initialization: advance once, add seeded state, advance.
  next_u32();
  state_ += splitmix64(sm);
  next_u32();
}

std::uint32_t Rng::next_u32() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() noexcept {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint32_t Rng::below(std::uint32_t n) noexcept {
  if (n <= 1) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * n;
  auto lowbits = static_cast<std::uint32_t>(m);
  if (lowbits < n) {
    const std::uint32_t threshold = (0u - n) % n;
    while (lowbits < threshold) {
      m = static_cast<std::uint64_t>(next_u32()) * n;
      lowbits = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Span fits in 32 bits for every caller in this library; fall back to
  // modulo of a 64-bit draw for wider spans (bias is < 2^-32, negligible).
  if (span <= 0xffffffffULL) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint32_t>(span)));
  }
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  // Avoid log(0): uniform() < 1 always, but guard the other end.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal_mean_var(double mean, double variance) noexcept {
  // Solve for the parameters (mu, sigma) of the underlying normal such that
  // the lognormal has the requested arithmetic mean m and variance v:
  //   sigma^2 = ln(1 + v/m^2),  mu = ln(m) - sigma^2/2.
  const double m2 = mean * mean;
  const double sigma2 = std::log1p(variance / m2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

double Rng::pareto(double scale, double shape) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return scale / std::pow(u, 1.0 / shape);
}

std::uint32_t Rng::poisson(double rate) noexcept {
  if (rate <= 0.0) return 0;
  if (rate < 64.0) {
    // Knuth's product method.
    const double limit = std::exp(-rate);
    double prod = uniform();
    std::uint32_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction; error is immaterial at
  // the arrival volumes where this branch engages.
  const double x = normal(rate, std::sqrt(rate)) + 0.5;
  return x <= 0.0 ? 0u : static_cast<std::uint32_t>(x);
}

Rng Rng::fork(std::string_view tag) const noexcept { return fork(hash_tag(tag)); }

Rng Rng::fork(std::uint64_t key) const noexcept {
  // Children are seeded from the master seed and keyed stream so that
  // fork order does not matter: fork("a") is the same whether or not
  // fork("b") happened first.
  std::uint64_t mix = seed_origin_;
  const std::uint64_t child_seed = splitmix64(mix) ^ key;
  return Rng(child_seed, key * 2 + 1);
}

}  // namespace ddp::util
