#pragma once

/// \file rng.hpp
/// Deterministic random-number generation for reproducible simulations.
///
/// All stochastic behaviour in the library flows through ddp::util::Rng, a
/// PCG32 generator (O'Neill 2014). PCG32 is small (16 bytes of state), fast,
/// and statistically strong enough for discrete-event simulation; most
/// importantly it is *ours*, so results are bit-identical across platforms
/// and standard-library versions (std::mt19937's distributions are not
/// portable across implementations).
///
/// Every subsystem derives its own child stream via Rng::fork(tag) so that
/// adding randomness in one module never perturbs another module's draws.

#include <cstdint>
#include <string_view>

namespace ddp::util {

/// Permuted congruential generator, 64-bit state / 32-bit output (PCG-XSH-RR).
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Seeds via splitmix64 so that consecutive small seeds produce
  /// uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept;

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return 0xffffffffu; }
  result_type operator()() noexcept { return next_u32(); }

  /// Next raw 32-bit draw.
  std::uint32_t next_u32() noexcept;

  /// Next raw 64-bit draw (two 32-bit draws).
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n) using Lemire's unbiased bounded method.
  std::uint32_t below(std::uint32_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double normal() noexcept;

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal variate parameterized by the *target arithmetic* mean and
  /// variance of the resulting distribution (not of the underlying normal).
  /// Used for peer lifetimes: the paper sets mean = 10 min, var = mean / 2.
  double lognormal_mean_var(double mean, double variance) noexcept;

  /// Pareto variate with scale x_m > 0 and shape alpha > 0.
  double pareto(double scale, double shape) noexcept;

  /// Poisson variate with the given rate (Knuth for small rates, normal
  /// approximation above 64 — adequate for workload arrival counts).
  std::uint32_t poisson(double rate) noexcept;

  /// Derive an independent child generator. The tag (e.g. "churn",
  /// "workload") is hashed into the stream selector so different subsystems
  /// get provably distinct sequences from the same master seed.
  [[nodiscard]] Rng fork(std::string_view tag) const noexcept;

  /// Derive a child keyed by an integer (e.g. per-peer streams).
  [[nodiscard]] Rng fork(std::uint64_t key) const noexcept;

  /// Complete generator state, exposed verbatim for checkpointing. A
  /// restored Rng continues the exact draw sequence of the saved one,
  /// including the cached Marsaglia spare normal.
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
    std::uint64_t seed_origin = 0;
    double spare_normal = 0.0;
    bool has_spare = false;
  };

  State state() const noexcept {
    return {state_, inc_, seed_origin_, spare_normal_, has_spare_};
  }

  void restore(const State& s) noexcept {
    state_ = s.state;
    inc_ = s.inc;
    seed_origin_ = s.seed_origin;
    spare_normal_ = s.spare_normal;
    has_spare_ = s.has_spare;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
  std::uint64_t seed_origin_ = 0;  ///< master seed, preserved for forks
};

/// splitmix64 — used for seeding and tag hashing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a 64-bit hash of a string tag.
std::uint64_t hash_tag(std::string_view tag) noexcept;

}  // namespace ddp::util
