#include "util/spans.hpp"

#include <algorithm>

namespace ddp::util {

std::vector<IndexSpan> make_spans(std::size_t n, std::size_t parts) {
  std::vector<IndexSpan> spans;
  if (n == 0) return spans;
  parts = std::max<std::size_t>(1, std::min(parts, n));
  spans.reserve(parts);
  std::size_t begin = 0;
  for (std::size_t k = 0; k < parts; ++k) {
    // Cut points n*(k+1)/parts are monotone and hit n exactly at the end.
    const std::size_t end = (n * (k + 1)) / parts;
    if (end > begin) {
      spans.push_back({begin, end});
      begin = end;
    }
  }
  return spans;
}

std::vector<IndexSpan> make_weighted_spans(std::span<const std::uint64_t> weights,
                                           std::size_t parts) {
  const std::size_t n = weights.size();
  std::vector<IndexSpan> spans;
  if (n == 0) return spans;
  parts = std::max<std::size_t>(1, std::min(parts, n));
  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;
  if (total == 0) return make_spans(n, parts);

  spans.reserve(parts);
  std::size_t begin = 0;
  std::uint64_t prefix = 0;
  std::size_t i = 0;
  for (std::size_t k = 0; k + 1 < parts && begin < n; ++k) {
    // Target running weight for the end of span k. Computed in long
    // double to dodge uint64 overflow on total * (k+1); the comparison is
    // still deterministic (same inputs, same arithmetic).
    const auto target = static_cast<long double>(total) *
                        static_cast<long double>(k + 1) /
                        static_cast<long double>(parts);
    while (i < n && (static_cast<long double>(prefix) < target ||
                     i < begin + 1)) {
      prefix += weights[i];
      ++i;
    }
    // Leave at least one index per remaining span.
    const std::size_t max_end = n - (parts - 1 - k);
    const std::size_t end = std::min(i, max_end);
    if (end > begin) {
      spans.push_back({begin, end});
      begin = end;
    }
    if (i < end) {
      // max_end clamp moved the cut left of the scan; resync the prefix.
      i = end;
      prefix = 0;
      for (std::size_t j = 0; j < end; ++j) prefix += weights[j];
    }
  }
  if (begin < n) spans.push_back({begin, n});
  return spans;
}

}  // namespace ddp::util
