#pragma once

/// \file spans.hpp
/// Deterministic contiguous partitioning of an index range into work
/// spans. The sharded engines hand one span per worker; because the cut
/// points are a pure function of (weights, parts) — never of thread
/// timing — the same inputs always produce the same plan, which is one of
/// the two legs the sharded flow engine's jobs-invariance stands on (the
/// other being the canonical-order contribution merge).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ddp::util {

struct IndexSpan {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive
  std::size_t size() const noexcept { return end - begin; }
};

/// Split [0, n) into at most `parts` non-empty contiguous spans of
/// near-equal length, in order. Fewer than `parts` spans come back when
/// n < parts; n == 0 yields no spans.
std::vector<IndexSpan> make_spans(std::size_t n, std::size_t parts);

/// Split [0, weights.size()) into at most `parts` non-empty contiguous
/// spans of near-equal total weight: span k ends at the first index whose
/// running weight reaches total * (k+1) / parts. Zero-weight items ride
/// along with their neighbours; an all-zero weight vector degrades to
/// make_spans. This is the flow engine's shard-assignment policy: spans
/// are contiguous in index (peers keep their slot spans together) and
/// balanced by per-index cost.
std::vector<IndexSpan> make_weighted_spans(std::span<const std::uint64_t> weights,
                                           std::size_t parts);

}  // namespace ddp::util
