#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ddp::util {

void StreamingStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double StreamingStats::sample_variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins + 2, 0.0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: require hi > lo and bins > 0");
  }
}

void Histogram::add(double x, double weight) noexcept {
  total_ += weight;
  if (x < lo_) {
    counts_.front() += weight;
  } else if (x >= hi_) {
    counts_.back() += weight;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= bins()) idx = bins() - 1;  // guard FP edge at hi_
    counts_[idx + 1] += weight;
  }
}

double Histogram::bin_low(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ <= 0.0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_;
  double cum = counts_.front();
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < bins(); ++i) {
    const double w = counts_[i + 1];
    if (cum + w >= target && w > 0.0) {
      const double frac = (target - cum) / w;
      return bin_low(i) + frac * width_;
    }
    cum += w;
  }
  return hi_;
}

void TimeSeries::add(double t, double v) {
  t_.push_back(t);
  v_.push_back(v);
}

double TimeSeries::first_time_at_or_above(double threshold, double from) const noexcept {
  for (std::size_t i = 0; i < t_.size(); ++i) {
    if (t_[i] >= from && v_[i] >= threshold) return t_[i];
  }
  return -1.0;
}

double TimeSeries::first_time_at_or_below(double threshold, double from) const noexcept {
  for (std::size_t i = 0; i < t_.size(); ++i) {
    if (t_[i] >= from && v_[i] <= threshold) return t_[i];
  }
  return -1.0;
}

double TimeSeries::tail_mean(double fraction) const noexcept {
  if (t_.empty()) return 0.0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  auto start = static_cast<std::size_t>(
      static_cast<double>(t_.size()) * (1.0 - fraction));
  if (start >= t_.size()) start = t_.size() - 1;
  double sum = 0.0;
  for (std::size_t i = start; i < v_.size(); ++i) sum += v_[i];
  return sum / static_cast<double>(v_.size() - start);
}

double TimeSeries::max_value() const noexcept {
  double m = 0.0;
  bool first = true;
  for (double v : v_) {
    if (first || v > m) m = v;
    first = false;
  }
  return m;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo_idx);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(lo_idx),
                   values.end());
  const double lo_v = values[lo_idx];
  if (frac == 0.0 || lo_idx + 1 >= values.size()) return lo_v;
  const double hi_v = *std::min_element(
      values.begin() + static_cast<std::ptrdiff_t>(lo_idx) + 1, values.end());
  return lo_v + frac * (hi_v - lo_v);
}

}  // namespace ddp::util
