#pragma once

/// \file stats.hpp
/// Streaming statistics, histograms and time series used by the metrics
/// pipeline and the experiment harness.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ddp::util {

/// Numerically stable streaming mean / variance / min / max (Welford).
class StreamingStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel-combine safe).
  void merge(const StreamingStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< population variance
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;
  double total_weight() const noexcept { return total_; }

  /// Weight in the i-th regular bin (0 <= i < bins()).
  double bin_weight(std::size_t i) const noexcept { return counts_[i + 1]; }
  double underflow() const noexcept { return counts_.front(); }
  double overflow() const noexcept { return counts_.back(); }
  std::size_t bins() const noexcept { return counts_.size() - 2; }
  double bin_low(std::size_t i) const noexcept;
  double bin_width() const noexcept { return width_; }

  /// Weighted quantile (q in [0,1]) with linear interpolation inside the
  /// containing bin. Returns lo/hi bounds for out-of-range mass.
  double quantile(double q) const noexcept;

  /// Raw bin contents ([underflow, bins..., overflow]) for checkpointing.
  const std::vector<double>& raw_counts() const noexcept { return counts_; }

  /// Restore checkpointed contents into a histogram with the same bin
  /// layout. Returns false (leaving the histogram untouched) on a bin-count
  /// mismatch — i.e. the snapshot came from a different configuration.
  bool restore_counts(std::vector<double> counts, double total) noexcept {
    if (counts.size() != counts_.size()) return false;
    counts_ = std::move(counts);
    total_ = total;
    return true;
  }

 private:
  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;  ///< [underflow, bins..., overflow]
};

/// A (time, value) series with helpers the damage-rate experiments need:
/// first crossing times, steady-state tail averages, resampling.
class TimeSeries {
 public:
  void add(double t, double v);

  std::size_t size() const noexcept { return t_.size(); }
  bool empty() const noexcept { return t_.empty(); }
  double time_at(std::size_t i) const noexcept { return t_[i]; }
  double value_at(std::size_t i) const noexcept { return v_[i]; }
  const std::vector<double>& times() const noexcept { return t_; }
  const std::vector<double>& values() const noexcept { return v_; }

  /// First sample time (at or after `from`) whose value is >= threshold;
  /// returns a negative value when no such sample exists.
  double first_time_at_or_above(double threshold, double from = 0.0) const noexcept;

  /// First sample time (at or after `from`) whose value is <= threshold.
  double first_time_at_or_below(double threshold, double from = 0.0) const noexcept;

  /// Mean of the last `fraction` (0,1] of the samples — the "stabilized"
  /// value used when reporting converged damage rates.
  double tail_mean(double fraction = 0.25) const noexcept;

  double max_value() const noexcept;

 private:
  std::vector<double> t_;
  std::vector<double> v_;
};

/// Exact quantile of a sample vector (copies and partially sorts).
double quantile(std::vector<double> values, double q);

}  // namespace ddp::util
