#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/log.hpp"

namespace ddp::util {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  cells_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : cells_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string{};
      os << "  " << v << std::string(widths[c] - v.size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : cells_) emit_row(r);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (char ch : v) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& r : cells_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(r[c]);
    }
    os << '\n';
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    log(LogLevel::kWarn, "Table: cannot open '" + path + "' for writing");
    return false;
  }
  f << to_csv();
  return static_cast<bool>(f);
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << "\n== " << title << " ==\n" << to_string();
}

}  // namespace ddp::util
