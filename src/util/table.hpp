#pragma once

/// \file table.hpp
/// Aligned console tables and CSV emission for the experiment harness.
/// Every bench binary prints its figure/table through this so the output
/// format is uniform across the reproduction.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ddp::util {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with sensible defaults. Rendering pads to the widest cell per column.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);

  std::size_t rows() const noexcept { return cells_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

  /// Render as an aligned ASCII table.
  std::string to_string() const;

  /// Render as RFC-4180-ish CSV (no quoting needed for our content, but
  /// cells containing commas/quotes are quoted anyway).
  std::string to_csv() const;

  /// Write CSV to a file; returns false (and logs) on I/O failure.
  bool write_csv(const std::string& path) const;

  /// Print the aligned table to the stream, preceded by a title line.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format a double with fixed precision (no trailing-zero trimming; tables
/// align better with uniform width).
std::string format_double(double v, int precision);

}  // namespace ddp::util
