#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace ddp::util {

ThreadPool::ThreadPool(unsigned workers) {
  const unsigned n = std::max(1u, workers);
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

unsigned resolve_jobs(unsigned requested) noexcept {
  if (requested != 0) return std::max(1u, requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace ddp::util
