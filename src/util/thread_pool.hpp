#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool for trial-granularity parallelism. The sim
/// engine is strictly single-writer (see sim/engine.hpp), so the unit of
/// parallel work in this codebase is a whole self-contained trial — own
/// engine, own RNG stream, own tracer/metrics — and the pool only ever
/// runs such closed tasks. Nothing here is exposed to simulation code.
///
/// Semantics: submit() enqueues a task; wait_idle() blocks the caller
/// until every submitted task has finished. Tasks must not submit further
/// tasks (the sweep fan-out is flat), and exceptions must be caught and
/// stored by the task itself — a task that throws terminates the process.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ddp::util {

class ThreadPool {
 public:
  /// Spin up `workers` threads (clamped to at least 1).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueue a task. Thread-safe, but the intended pattern is a single
  /// coordinating thread submitting a batch and then calling wait_idle().
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no worker is running a task.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Resolve a jobs request: 0 means "one per hardware thread", anything
/// else is used as given (clamped to at least 1).
unsigned resolve_jobs(unsigned requested) noexcept;

}  // namespace ddp::util
