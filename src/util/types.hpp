#pragma once

/// \file types.hpp
/// Fundamental identifiers and time units shared by every ddpolice module.
///
/// Simulated time is kept in double-precision *seconds*; the paper's
/// protocol state machines all run at per-minute granularity, so helpers
/// convert between the two. Peer identifiers are dense indices into the
/// overlay's node table; INVALID_PEER marks "no peer".

#include <cstdint>
#include <limits>

namespace ddp {

/// Dense index of a peer in the overlay node table.
using PeerId = std::uint32_t;

/// Sentinel for "no such peer".
inline constexpr PeerId kInvalidPeer = std::numeric_limits<PeerId>::max();

/// Simulated wall-clock time, in seconds.
using SimTime = double;

/// One simulated minute, in seconds. The paper's counters (queries per
/// minute, indicators, thresholds) are all per-minute quantities.
inline constexpr SimTime kMinute = 60.0;

/// Convert minutes to the engine's native seconds.
constexpr SimTime minutes(double m) noexcept { return m * kMinute; }

/// Convert seconds to minutes (for reporting).
constexpr double to_minutes(SimTime s) noexcept { return s / kMinute; }

/// A monotonically increasing query identifier, unique per simulation run.
using QueryId = std::uint64_t;

/// Classification used throughout the attack/defense pipeline.
enum class PeerKind : std::uint8_t {
  kGood = 0,  ///< well-behaved peer (<= q issued queries/min, Def. 2.2)
  kBad = 1,   ///< DDoS-compromised peer (issues Q_d queries/min, Sec. 3.5)
};

}  // namespace ddp
