#include "util/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ddp::util {

ZipfSampler::ZipfSampler(std::size_t n, double theta) : theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty catalogue");
  if (theta < 0.0) throw std::invalid_argument("ZipfSampler: negative exponent");
  cdf_.resize(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = cum;
  }
  const double norm = cum;
  for (double& c : cdf_) c /= norm;
  cdf_.back() = 1.0;  // guard FP round-off at the top
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  const double hi = cdf_[rank];
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return hi - lo;
}

}  // namespace ddp::util
