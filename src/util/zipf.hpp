#pragma once

/// \file zipf.hpp
/// Zipf-distributed sampling over a finite catalogue. Query-string and
/// content popularity in Gnutella-era measurements ([16], [20]) are
/// well-modelled by Zipf with exponent around 0.6-1.0; the workload
/// substrate draws both from this sampler.
///
/// Implementation: inverse-CDF over a precomputed cumulative table, O(log n)
/// per draw, exact for any exponent (including 0 = uniform).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ddp::util {

class ZipfSampler {
 public:
  /// \param n     catalogue size (ranks 0..n-1; rank 0 is most popular)
  /// \param theta Zipf exponent (>= 0); 0 degenerates to uniform
  ZipfSampler(std::size_t n, double theta);

  /// Draw a rank in [0, n).
  std::size_t sample(Rng& rng) const noexcept;

  /// Probability mass of a rank.
  double pmf(std::size_t rank) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }
  double theta() const noexcept { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  ///< cdf_[i] = P(rank <= i)
};

}  // namespace ddp::util
