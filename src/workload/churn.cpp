#include "workload/churn.hpp"

#include <algorithm>
#include <cmath>

namespace ddp::workload {

double ChurnModel::sample_lifetime(util::Rng& rng) const noexcept {
  const double mean = config_.mean_lifetime;
  switch (config_.distribution) {
    case LifetimeDistribution::kLognormal:
      return std::max(1.0, rng.lognormal_mean_var(mean, config_.lifetime_variance));
    case LifetimeDistribution::kExponential:
      return std::max(1.0, rng.exponential(mean));
    case LifetimeDistribution::kPareto: {
      // Scale so the Pareto mean equals the configured mean:
      // E[X] = shape * scale / (shape - 1) for shape > 1.
      const double shape = config_.pareto_shape;
      const double scale = mean * (shape - 1.0) / shape;
      return std::max(1.0, rng.pareto(scale, shape));
    }
  }
  return mean;
}

double ChurnModel::sample_offline(util::Rng& rng) const noexcept {
  return std::max(1.0, rng.exponential(config_.mean_offline));
}

std::size_t ChurnModel::connect_joining_peer(topology::Graph& g, PeerId peer,
                                             util::Rng& rng) const {
  std::size_t added = 0;
  for (std::size_t attempt = 0;
       attempt < config_.rejoin_links * 8 && added < config_.rejoin_links;
       ++attempt) {
    const PeerId target = g.random_active_node_by_degree(rng, peer);
    if (target == kInvalidPeer) break;
    if (g.add_edge(peer, target)) ++added;
  }
  return added;
}

}  // namespace ddp::workload
