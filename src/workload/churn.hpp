#pragma once

/// \file churn.hpp
/// Peer churn model (Sec. 3.5). The paper assigns each joining peer a
/// lifetime drawn from the distribution observed by Saroiu et al. [19]
/// with mean 10 minutes and variance half the mean; when the lifetime
/// expires the peer leaves and — since hosts rejoin 6.4 times/day on
/// average [22] — comes back after an offline period. Rejoining peers
/// connect to a few existing peers, preferentially to well-connected ones
/// (how Gnutella host caches behave in practice and how BRITE grows
/// topologies).

#include <cstdint>
#include <functional>

#include "topology/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ddp::workload {

enum class LifetimeDistribution : std::uint8_t {
  kLognormal,    ///< paper's configuration: mean 10 min, var = mean / 2
  kExponential,  ///< memoryless null model (ablation)
  kPareto,       ///< heavy-tailed alternative (ablation)
};

struct ChurnConfig {
  bool enabled = true;
  LifetimeDistribution distribution = LifetimeDistribution::kLognormal;
  /// The paper's Sec. 3.1 staleness analysis ("the probability we miss one
  /// or more neighbouring peers ... is around 3% (2/60)") assumes a mean
  /// lifetime of 60 minutes, consistent with the 60-minute median up-time
  /// it cites from Saroiu et al. [19].
  double mean_lifetime = minutes(60.0);
  /// Paper: "the value of the variance is chosen to be half of the value
  /// of the mean" — var = mean/2 in minutes^2, scaled here to seconds^2.
  double lifetime_variance = 30.0 * kMinute * kMinute;
  double mean_offline = minutes(20.0);  ///< offline gap before rejoining
  std::size_t rejoin_links = 3;         ///< links established on (re)join
  double pareto_shape = 1.5;
};

/// Samples lifetimes/offline gaps per the configured distribution.
class ChurnModel {
 public:
  explicit ChurnModel(const ChurnConfig& config) : config_(config) {}

  const ChurnConfig& config() const noexcept { return config_; }

  double sample_lifetime(util::Rng& rng) const noexcept;
  double sample_offline(util::Rng& rng) const noexcept;

  /// Wire a (re)joining peer into the graph: `rejoin_links` edges to
  /// degree-preferential active targets. Returns edges actually added.
  std::size_t connect_joining_peer(topology::Graph& g, PeerId peer,
                                   util::Rng& rng) const;

 private:
  ChurnConfig config_;
};

}  // namespace ddp::workload
