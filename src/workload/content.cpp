#include "workload/content.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace ddp::workload {

ContentModel::ContentModel(const ContentConfig& config, std::size_t peer_count)
    : peer_count_(peer_count),
      seed_(config.placement_seed),
      popularity_(config.objects, config.popularity_theta) {
  // Per-object replication: proportional to pmf^skew, normalized so the
  // catalogue-wide average replica count matches mean_replicas.
  replication_.resize(config.objects);
  double weight_sum = 0.0;
  for (std::size_t o = 0; o < config.objects; ++o) {
    replication_[o] = std::pow(popularity_.pmf(o), config.replication_skew);
    weight_sum += replication_[o];
  }
  const double total_replicas =
      config.mean_replicas * static_cast<double>(config.objects);
  for (double& r : replication_) {
    const double replicas = total_replicas * r / weight_sum;
    r = std::min(1.0, replicas / static_cast<double>(std::max<std::size_t>(peer_count, 1)));
  }

  // Hit-probability lookup grid: log-spaced reach values 1 .. peer_count.
  const std::size_t grid_points = 64;
  grid_n_.reserve(grid_points + 1);
  grid_p_.reserve(grid_points + 1);
  grid_n_.push_back(0.0);
  grid_p_.push_back(0.0);
  const double max_n = static_cast<double>(std::max<std::size_t>(peer_count, 2));
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(grid_points - 1);
    const double n = std::exp(std::log(max_n) * frac);  // 1 .. max_n
    double p = 0.0;
    for (std::size_t o = 0; o < replication_.size(); ++o) {
      p += popularity_.pmf(o) * (1.0 - std::pow(1.0 - replication_[o], n));
    }
    grid_n_.push_back(n);
    grid_p_.push_back(p);
  }
}

ObjectId ContentModel::sample_query_object(util::Rng& rng) const noexcept {
  return static_cast<ObjectId>(popularity_.sample(rng));
}

bool ContentModel::peer_has(PeerId p, ObjectId o) const noexcept {
  if (o >= replication_.size()) return false;
  // Deterministic membership keyed by (seed, peer, object).
  std::uint64_t s = seed_ ^ (static_cast<std::uint64_t>(p) << 32) ^ o;
  const std::uint64_t h = util::splitmix64(s);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < replication_[o];
}

double ContentModel::replication_ratio(ObjectId o) const noexcept {
  return o < replication_.size() ? replication_[o] : 0.0;
}

double ContentModel::expected_replicas(ObjectId o) const noexcept {
  return replication_ratio(o) * static_cast<double>(peer_count_);
}

double ContentModel::hit_probability(ObjectId o, double peers_reached) const noexcept {
  if (o >= replication_.size() || peers_reached <= 0.0) return 0.0;
  return 1.0 - std::pow(1.0 - replication_[o], peers_reached);
}

double ContentModel::average_hit_probability(double peers_reached) const noexcept {
  if (peers_reached <= 0.0) return 0.0;
  const auto it = std::lower_bound(grid_n_.begin(), grid_n_.end(), peers_reached);
  if (it == grid_n_.end()) return grid_p_.back();
  const auto hi = static_cast<std::size_t>(it - grid_n_.begin());
  if (hi == 0) return grid_p_.front();
  const double n0 = grid_n_[hi - 1], n1 = grid_n_[hi];
  const double p0 = grid_p_[hi - 1], p1 = grid_p_[hi];
  const double frac = (n1 > n0) ? (peers_reached - n0) / (n1 - n0) : 0.0;
  return p0 + frac * (p1 - p0);
}

std::size_t ContentModel::shared_count(PeerId p) const noexcept {
  std::size_t n = 0;
  for (ObjectId o = 0; o < replication_.size(); ++o) {
    if (peer_has(p, o)) ++n;
  }
  return n;
}

}  // namespace ddp::workload
