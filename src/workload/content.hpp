#pragma once

/// \file content.hpp
/// Content and replication model for the search workload.
///
/// The paper drives its simulation from a 2-day KaZaA trace [20] and the
/// Gnutella query-popularity study [16]; we substitute a parametric model
/// with the same structure: a catalogue of objects whose popularity is
/// Zipf-distributed, replicated across peers proportionally to popularity
/// (popular content is fetched more, hence stored more — the classic
/// square-root/proportional replication observed in deployed systems).
///
/// Peer->object placement is a deterministic hash so both engines agree on
/// who stores what without materializing per-peer lists for 2,000 peers x
/// 10,000 objects.

#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"
#include "util/types.hpp"
#include "util/zipf.hpp"

namespace ddp::workload {

using ObjectId = std::uint32_t;

struct ContentConfig {
  std::size_t objects = 10000;        ///< catalogue size
  double popularity_theta = 0.8;      ///< Zipf exponent of query popularity
  double mean_replicas = 20.0;        ///< average replicas per object
  double replication_skew = 0.7;      ///< replicas_o proportional to pmf^skew
  std::uint64_t placement_seed = 1;   ///< keys the peer->object hash
};

class ContentModel {
 public:
  ContentModel(const ContentConfig& config, std::size_t peer_count);

  std::size_t objects() const noexcept { return replication_.size(); }
  std::size_t peers() const noexcept { return peer_count_; }

  /// Draw the target object of a new query (Zipf by popularity).
  ObjectId sample_query_object(util::Rng& rng) const noexcept;

  /// Deterministic membership: does peer p store object o?
  bool peer_has(PeerId p, ObjectId o) const noexcept;

  /// Fraction of peers storing object o.
  double replication_ratio(ObjectId o) const noexcept;

  /// Expected number of replicas of o across the population.
  double expected_replicas(ObjectId o) const noexcept;

  /// P(at least one replica among n distinct peers drawn at random) —
  /// the flow engine's success model for a flood that reached n peers.
  double hit_probability(ObjectId o, double peers_reached) const noexcept;

  /// Average hit probability for a random query reaching n peers
  /// (popularity-weighted over the catalogue; precomputed).
  double average_hit_probability(double peers_reached) const noexcept;

  /// Number of objects stored by p (diagnostics; O(objects)).
  std::size_t shared_count(PeerId p) const noexcept;

 private:
  std::size_t peer_count_;
  std::uint64_t seed_;
  util::ZipfSampler popularity_;
  std::vector<double> replication_;  ///< per-object replica ratio in [0,1]
  // Precomputed popularity-weighted hit probability on a log-spaced grid of
  // reach values; average_hit_probability() interpolates linearly.
  std::vector<double> grid_n_;
  std::vector<double> grid_p_;
};

}  // namespace ddp::workload
