#include "workload/flash_crowd.hpp"

#include <cmath>
#include <limits>

#include "snapshot/state_io.hpp"

namespace ddp::workload {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

std::string validate(const FlashCrowdConfig& cfg) {
  if (!cfg.enabled) return {};
  if (!std::isfinite(cfg.start_minute) || cfg.start_minute < 0.0) {
    return "flash.start_minute must be finite and >= 0";
  }
  if (!std::isfinite(cfg.surge_minutes) || cfg.surge_minutes <= 0.0) {
    return "flash.surge_minutes must be a finite value > 0";
  }
  if (!std::isfinite(cfg.repeat_every_minutes) ||
      cfg.repeat_every_minutes < 0.0) {
    return "flash.repeat_every_minutes must be finite and >= 0";
  }
  if (!std::isfinite(cfg.surge_factor) || cfg.surge_factor < 1.0) {
    return "flash.surge_factor must be finite and >= 1";
  }
  if (!(cfg.participation > 0.0) || cfg.participation > 1.0) {
    return "flash.participation must be within (0, 1]";
  }
  return {};
}

FlashCrowdDriver::FlashCrowdDriver(const FlashCrowdConfig& config,
                                   std::size_t node_count, util::Rng rng,
                                   ScaleFn set_scale, EligibleFn eligible)
    : config_(config),
      node_count_(node_count),
      rng_(rng),
      set_scale_(std::move(set_scale)),
      eligible_(std::move(eligible)),
      next_surge_minute_(config.enabled ? config.start_minute : kNever) {}

void FlashCrowdDriver::begin_surge(double minute) {
  participants_.clear();
  // Per-peer Bernoulli in ascending id order: deterministic regardless of
  // how the eligible set shifted since the last surge.
  for (PeerId p = 0; p < node_count_; ++p) {
    if (!eligible_(p)) continue;
    if (rng_.uniform() < config_.participation) participants_.push_back(p);
  }
  for (const PeerId p : participants_) set_scale_(p, config_.surge_factor);
  surge_end_minute_ = minute + config_.surge_minutes;
  next_surge_minute_ = config_.repeat_every_minutes > 0.0
                           ? minute + config_.repeat_every_minutes
                           : kNever;
  ++surges_;
  DDP_TRACE(tracer_, obs::EventType::kFlashCrowdStarted, minute * kMinute,
            kInvalidPeer, kInvalidPeer,
            {{"participants", static_cast<double>(participants_.size())},
             {"factor", config_.surge_factor}});
}

void FlashCrowdDriver::end_surge(double minute) {
  // Restore only peers the surge still owns: a participant that churned
  // offline or fell into the quarantine ladder mid-surge has its budget
  // managed elsewhere now.
  for (const PeerId p : participants_) {
    if (eligible_(p)) set_scale_(p, 1.0);
  }
  DDP_TRACE(tracer_, obs::EventType::kFlashCrowdEnded, minute * kMinute,
            kInvalidPeer, kInvalidPeer,
            {{"participants", static_cast<double>(participants_.size())}});
  participants_.clear();
  surge_end_minute_ = -1.0;
}

void FlashCrowdDriver::on_minute(double minute) {
  if (!config_.enabled) return;
  if (surging() && minute + 1e-9 >= surge_end_minute_) end_surge(minute);
  if (!surging() && minute + 1e-9 >= next_surge_minute_) begin_surge(minute);
}

void FlashCrowdDriver::save(snapshot::Writer& w) const {
  w.f64(next_surge_minute_);
  w.f64(surge_end_minute_);
  w.size(participants_.size());
  for (const PeerId p : participants_) w.u32(p);
  w.u64(static_cast<std::uint64_t>(surges_));
  snapshot::save_rng(w, rng_);
}

void FlashCrowdDriver::load(snapshot::Reader& r) {
  next_surge_minute_ = r.f64();
  surge_end_minute_ = r.f64();
  participants_.resize(r.size(1u << 24));
  for (PeerId& p : participants_) p = r.u32();
  surges_ = static_cast<std::size_t>(r.u64());
  snapshot::load_rng(r, rng_);
}

}  // namespace ddp::workload
