#pragma once

/// \file flash_crowd.hpp
/// Correlated legitimate query surges ("flash crowds"). A real overlay
/// sees them whenever content suddenly becomes hot: a crowd of honest
/// peers multiplies its query rate at once, which is exactly the traffic
/// shape a threshold-based DDoS defense risks mistaking for an attack
/// (the Gupta et al. discrimination problem, PAPERS.md). The driver
/// periodically picks a random fraction of eligible peers and scales
/// their query-issue rate by surge_factor for surge_minutes, then
/// restores them — all through caller-supplied callbacks, so the
/// workload layer stays independent of any particular engine.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ddp::snapshot {
class Writer;
class Reader;
}  // namespace ddp::snapshot

namespace ddp::workload {

struct FlashCrowdConfig {
  bool enabled = false;
  /// First surge onset, minutes into the run.
  double start_minute = 15.0;
  /// Surge length, minutes.
  double surge_minutes = 6.0;
  /// Gap between surge onsets, minutes (<= 0: one surge only).
  double repeat_every_minutes = 0.0;
  /// Query-rate multiplier applied to each participant during the surge.
  double surge_factor = 20.0;
  /// Fraction of eligible peers that join each surge.
  double participation = 0.25;
};

/// Range-checks a FlashCrowdConfig (only when enabled). Returns an empty
/// string when usable, else the first problem.
std::string validate(const FlashCrowdConfig& cfg);

class FlashCrowdDriver {
 public:
  /// Write a peer's issue-rate multiplier (1.0 = normal).
  using ScaleFn = std::function<void(PeerId, double)>;
  /// Whether a peer may be recruited (active, honest, unrestricted).
  using EligibleFn = std::function<bool(PeerId)>;

  FlashCrowdDriver(const FlashCrowdConfig& config, std::size_t node_count,
                   util::Rng rng, ScaleFn set_scale, EligibleFn eligible);

  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.bind(sink); }

  /// Minute hook: start a due surge, end an expired one.
  void on_minute(double minute);

  bool surging() const noexcept { return !participants_.empty(); }
  const std::vector<PeerId>& participants() const noexcept {
    return participants_;
  }
  std::size_t surges_started() const noexcept { return surges_; }

  /// Serialize surge schedule + participant set into the writer's open
  /// section / restore it. Scales themselves live with the engine.
  void save(snapshot::Writer& w) const;
  void load(snapshot::Reader& r);

 private:
  void begin_surge(double minute);
  void end_surge(double minute);

  FlashCrowdConfig config_;
  std::size_t node_count_;
  util::Rng rng_;
  ScaleFn set_scale_;
  EligibleFn eligible_;
  obs::Tracer tracer_;

  double next_surge_minute_ = 0.0;
  double surge_end_minute_ = -1.0;      ///< < 0: not surging
  std::vector<PeerId> participants_;   ///< ascending ids while surging
  std::size_t surges_ = 0;
};

}  // namespace ddp::workload
