#include "workload/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/log.hpp"

namespace ddp::workload {

TraceGenerator::TraceGenerator(const TraceConfig& config)
    : config_(config), popularity_(config.vocabulary, config.popularity_theta) {}

std::string TraceGenerator::query_string(std::size_t rank) {
  // Deterministic pseudo-keywords: a short head token plus the rank, so
  // popular queries are shorter (mirroring real traces where popular
  // searches are terse) and the mean length lands near the trace's ~9 B.
  static const char* heads[] = {"mp3", "avi", "dvd", "live", "mix",
                                "the", "best", "new", "hot", "top"};
  std::string s = heads[rank % 10];
  s += ' ';
  s += std::to_string(rank);
  return s;
}

std::vector<TraceRecord> TraceGenerator::generate(std::size_t count,
                                                  util::Rng& rng) const {
  std::vector<TraceRecord> out;
  out.reserve(count);
  double t = 0.0;
  const double mean_gap = 1.0 / config_.queries_per_second;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(mean_gap);
    if (t > config_.duration_seconds) break;
    TraceRecord rec;
    rec.timestamp = t;
    rec.query = query_string(popularity_.sample(rng));
    out.push_back(std::move(rec));
  }
  return out;
}

void write_trace(std::ostream& os, const std::vector<TraceRecord>& records) {
  for (const auto& r : records) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", r.timestamp);
    os << buf << '\t' << r.query << '\n';
  }
}

std::vector<TraceRecord> read_trace(std::istream& is) {
  std::vector<TraceRecord> out;
  std::string line;
  std::size_t bad = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto tab = line.find('\t');
    if (tab == std::string::npos || tab == 0) {
      ++bad;
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const double ts = std::strtod(line.c_str(), &end);
    if (end != line.c_str() + tab || errno != 0) {
      ++bad;
      continue;
    }
    out.push_back(TraceRecord{ts, line.substr(tab + 1)});
  }
  if (bad > 0) {
    util::log_warn("read_trace: skipped " + std::to_string(bad) + " malformed lines");
  }
  return out;
}

TraceStats analyze_trace(const std::vector<TraceRecord>& records) {
  TraceStats stats;
  stats.records = records.size();
  if (records.empty()) return stats;
  std::map<std::string, std::size_t> freq;
  double bytes = 0.0;
  for (const auto& r : records) {
    ++freq[r.query];
    bytes += static_cast<double>(r.query.size());
  }
  stats.unique_queries = freq.size();
  stats.duration_seconds = records.back().timestamp - records.front().timestamp;
  stats.mean_query_bytes = bytes / static_cast<double>(records.size());
  std::vector<std::size_t> counts;
  counts.reserve(freq.size());
  for (const auto& [q, c] : freq) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  std::size_t top = 0;
  for (std::size_t i = 0; i < counts.size() && i < 10; ++i) top += counts[i];
  stats.top10_share = static_cast<double>(top) / static_cast<double>(records.size());
  return stats;
}

}  // namespace ddp::workload
