#pragma once

/// \file trace.hpp
/// Synthetic Gnutella query-trace generation and replay.
///
/// Sec. 2.3 of the paper builds a traffic-monitoring super-node with a
/// modified LimeWire client and logs 13,075,339 queries (112 MB) in 24
/// hours; its DDoS-agent prototype then *replays* that log as fast as it
/// can. We cannot capture a live Gnutella network, so TraceGenerator
/// synthesizes a trace with the published shape: Poisson arrivals at a
/// configurable aggregate rate, query strings drawn Zipf-by-popularity
/// from a keyword catalogue ([16] reports strong popularity skew), and an
/// average wire size matching the 112 MB / 13M ~ 9-byte search strings.
///
/// The trace is a plain text format, one record per line:
///   <timestamp-seconds>\t<query string>
/// so the example tooling can inspect it with standard UNIX tools.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace ddp::workload {

struct TraceRecord {
  double timestamp = 0.0;  ///< seconds since trace start
  std::string query;
};

struct TraceConfig {
  double duration_seconds = 24.0 * 3600.0;  ///< paper: 24 h capture
  double queries_per_second = 151.3;        ///< paper: 13,075,339 / 24 h
  std::size_t vocabulary = 50000;           ///< distinct query strings
  double popularity_theta = 0.9;            ///< Zipf exponent of [16]
};

class TraceGenerator {
 public:
  explicit TraceGenerator(const TraceConfig& config);

  /// Generate `count` records (timestamps follow a Poisson process scaled
  /// to the configured rate; generation stops at whichever of count /
  /// duration is hit first).
  std::vector<TraceRecord> generate(std::size_t count, util::Rng& rng) const;

  /// Render the deterministic query string of a popularity rank.
  static std::string query_string(std::size_t rank);

 private:
  TraceConfig config_;
  util::ZipfSampler popularity_;
};

/// Serialize records to the text trace format.
void write_trace(std::ostream& os, const std::vector<TraceRecord>& records);

/// Parse a text trace; malformed lines are skipped with a warning.
std::vector<TraceRecord> read_trace(std::istream& is);

/// Summary statistics the trace tooling prints (and tests assert).
struct TraceStats {
  std::size_t records = 0;
  std::size_t unique_queries = 0;
  double duration_seconds = 0.0;
  double mean_query_bytes = 0.0;
  /// Fraction of records covered by the 10 most popular strings.
  double top10_share = 0.0;
};

TraceStats analyze_trace(const std::vector<TraceRecord>& records);

}  // namespace ddp::workload
