// Adaptive-CT tests: config validation, band learning and the two rails on
// a hand-driven overlay, the suspicion state machine (budget reduction and
// timed exit), the band poison guard, snapshot fidelity of the learned
// state, and the end-to-end property the subsystem exists for — a
// low-and-slow attacker that static DD-POLICE never even flags is cut by
// the learned bands.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>
#include <utility>

#include "core/adaptive.hpp"
#include "core/config.hpp"
#include "experiments/scenario.hpp"
#include "snapshot/snapshot.hpp"
#include "topology/graph.hpp"

namespace ddp::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ----------------------------------------------------------- validation

DdPoliceConfig adaptive_on() {
  DdPoliceConfig cfg;
  cfg.adaptive.enabled = true;
  return cfg;
}

TEST(AdaptiveValidate, DefaultsPassEnabledOrNot) {
  EXPECT_EQ(validate(DdPoliceConfig{}), "");
  EXPECT_EQ(validate(adaptive_on()), "");
}

TEST(AdaptiveValidate, RejectsInvertedRails) {
  DdPoliceConfig cfg = adaptive_on();
  cfg.adaptive.k1 = 4.0;
  cfg.adaptive.k2 = 2.0;
  EXPECT_NE(validate(cfg).find("k1"), std::string::npos);
  cfg.adaptive.k1 = cfg.adaptive.k2;  // equal rails are just as meaningless
  EXPECT_NE(validate(cfg), "");
  cfg.adaptive.k1 = 0.0;
  cfg.adaptive.k2 = 4.0;
  EXPECT_NE(validate(cfg), "");
}

TEST(AdaptiveValidate, RejectsDegenerateWindowAndSamples) {
  DdPoliceConfig cfg = adaptive_on();
  cfg.adaptive.window_minutes = 0;
  EXPECT_NE(validate(cfg).find("window_minutes"), std::string::npos);

  cfg = adaptive_on();
  cfg.adaptive.min_samples = 0;
  EXPECT_NE(validate(cfg).find("min_samples"), std::string::npos);
  cfg.adaptive.min_samples = cfg.adaptive.window_minutes + 1;
  EXPECT_NE(validate(cfg), "");

  cfg = adaptive_on();
  cfg.adaptive.estimate_period_minutes = 0.0;
  EXPECT_NE(validate(cfg), "");
}

TEST(AdaptiveValidate, RejectsOutOfRangeKnobs) {
  DdPoliceConfig cfg = adaptive_on();
  cfg.adaptive.suspicious_budget = 1.5;
  EXPECT_NE(validate(cfg), "");

  cfg = adaptive_on();
  cfg.adaptive.band_floor = -1.0;
  EXPECT_NE(validate(cfg), "");

  cfg = adaptive_on();
  cfg.adaptive.malicious_ct = 0.0;
  EXPECT_NE(validate(cfg), "");

  cfg = adaptive_on();
  cfg.adaptive.suspicion_exit_minutes = -1.0;
  EXPECT_NE(validate(cfg), "");
}

TEST(AdaptiveValidate, DisabledKnobsAreNotChecked) {
  // Off = paper mode: whatever garbage sits in the unused knobs must not
  // block a run (callers toggle enabled without re-sanitizing the rest).
  DdPoliceConfig cfg;
  cfg.adaptive.k1 = 9.0;
  cfg.adaptive.k2 = 1.0;
  cfg.adaptive.window_minutes = 0;
  EXPECT_EQ(validate(cfg), "");
}

TEST(AdaptiveValidate, ScenarioRequiresMonitors) {
  // Bands are learned from DD-POLICE's own monitors; adaptive mode with
  // any other defense has nothing to learn from and must be rejected.
  experiments::ScenarioConfig cfg =
      experiments::paper_scenario(100, 10, defense::Kind::kNone, 1);
  cfg.ddpolice.adaptive.enabled = true;
  EXPECT_NE(experiments::validate_config(cfg).find("adaptive"),
            std::string::npos);

  experiments::ScenarioConfig ok =
      experiments::paper_scenario(100, 10, defense::Kind::kDdPolice, 1);
  ok.ddpolice.adaptive.enabled = true;
  EXPECT_EQ(experiments::validate_config(ok), "");
  ok.ddpolice.adaptive.k1 = 4.0;
  ok.ddpolice.adaptive.k2 = 2.0;
  EXPECT_NE(experiments::validate_config(ok), "");
}

// ------------------------------------------------- bands on a fake port

// Hand-driven OverlayPort: a fixed graph plus a writable rate matrix, so
// tests control exactly what every monitor observes each minute.
class FakeOverlay final : public OverlayPort {
 public:
  explicit FakeOverlay(std::size_t peers) : graph_(peers) {}

  topology::Graph& mutable_graph() { return graph_; }
  void set_rate(PeerId from, PeerId to, double rate) {
    rate_[{from, to}] = rate;
  }
  double budget(PeerId p) const {
    auto it = budget_.find(p);
    return it != budget_.end() ? it->second : 1.0;
  }

  const topology::Graph& graph() const override { return graph_; }
  double sent_last_minute(PeerId from, PeerId to) const override {
    auto it = rate_.find({from, to});
    return it != rate_.end() ? it->second : 0.0;
  }
  void disconnect(PeerId a, PeerId b) override { graph_.remove_edge(a, b); }
  void set_query_budget(PeerId p, double scale) override {
    budget_[p] = scale;
  }
  void report_overhead(double) override {}

 private:
  topology::Graph graph_;
  std::map<std::pair<PeerId, PeerId>, double> rate_;
  std::map<PeerId, double> budget_;
};

// Tight knobs so tests mature quickly: window 6, estimate every 2 min,
// mature at 4 samples, rails at 2x / 4x band.max with a 50 q/min floor.
DdPoliceConfig tight_config() {
  DdPoliceConfig cfg;
  cfg.adaptive.enabled = true;
  cfg.adaptive.window_minutes = 6;
  cfg.adaptive.estimate_period_minutes = 2.0;
  cfg.adaptive.min_samples = 4;
  cfg.adaptive.k1 = 2.0;
  cfg.adaptive.k2 = 4.0;
  cfg.adaptive.band_floor = 50.0;
  cfg.adaptive.suspicious_budget = 0.5;
  cfg.adaptive.suspicion_exit_minutes = 2.0;
  cfg.adaptive.malicious_ct = 2.0;
  return cfg;
}

TEST(AdaptiveBands, LearnsBandAndDerivesRails) {
  FakeOverlay port(2);
  port.mutable_graph().add_edge(0, 1);
  port.set_rate(0, 1, 120.0);
  port.set_rate(1, 0, 80.0);
  AdaptiveThresholds adp(port, tight_config());

  // Immature: rails are +inf and the static thresholds apply unchanged.
  adp.on_minute(1.0);
  adp.on_minute(2.0);  // re-estimate runs but 2 samples < min_samples
  EXPECT_FALSE(adp.band(0, 1).mature);
  EXPECT_EQ(adp.suspicion_rail(0, 1), kInf);
  EXPECT_DOUBLE_EQ(adp.warning_threshold(1, 0), 500.0);
  EXPECT_DOUBLE_EQ(adp.cut_threshold(1, 0), 5.0);

  adp.on_minute(3.0);
  adp.on_minute(4.0);  // 4 samples at the minute-4 estimate: mature
  const auto band = adp.band(0, 1);
  ASSERT_TRUE(band.mature);
  EXPECT_DOUBLE_EQ(band.min, 120.0);
  EXPECT_DOUBLE_EQ(band.lambda, 120.0);
  EXPECT_DOUBLE_EQ(band.max, 120.0);
  EXPECT_DOUBLE_EQ(adp.suspicion_rail(0, 1), 240.0);   // k1 * max
  EXPECT_DOUBLE_EQ(adp.malicious_rail(0, 1), 480.0);   // (k2/k1) * r1
  EXPECT_GE(adp.band_reestimates(), 1u);

  // The reverse direction learned its own (quieter) band; its rail sits
  // on the floor-clamped side of 2 * 80.
  EXPECT_DOUBLE_EQ(adp.suspicion_rail(1, 0), 160.0);

  // Unknown links stay static.
  EXPECT_EQ(adp.suspicion_rail(0, 0), kInf);
  EXPECT_DOUBLE_EQ(adp.warning_threshold(0, 99), 500.0);
}

TEST(AdaptiveBands, FloorClampsQuietLinks) {
  FakeOverlay port(2);
  port.mutable_graph().add_edge(0, 1);
  port.set_rate(0, 1, 2.0);  // near-silent link: 2 q/min normal
  AdaptiveThresholds adp(port, tight_config());
  for (double m = 1.0; m <= 4.0; m += 1.0) adp.on_minute(m);
  ASSERT_TRUE(adp.band(0, 1).mature);
  // 2 * 2 q/min would alarm on a handful of queries; the floor holds.
  EXPECT_DOUBLE_EQ(adp.suspicion_rail(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(adp.malicious_rail(0, 1), 100.0);
}

TEST(AdaptiveBands, ThresholdsTightenOnlyPastTheRails) {
  FakeOverlay port(2);
  port.mutable_graph().add_edge(0, 1);
  port.set_rate(0, 1, 120.0);
  AdaptiveThresholds adp(port, tight_config());
  for (double m = 1.0; m <= 4.0; m += 1.0) adp.on_minute(m);

  // Mature band at 120: warning drops to r1, CT stays static while the
  // live rate is below the malicious rail...
  EXPECT_DOUBLE_EQ(adp.warning_threshold(1, 0), 240.0);
  EXPECT_DOUBLE_EQ(adp.cut_threshold(1, 0), 5.0);

  // ...and tightens to malicious_ct the minute the rate crosses r2.
  port.set_rate(0, 1, 600.0);  // > 480
  EXPECT_DOUBLE_EQ(adp.cut_threshold(1, 0), 2.0);
}

TEST(AdaptiveBands, MaliciousCtNeverLoosensThePaperCt) {
  DdPoliceConfig cfg = tight_config();
  cfg.adaptive.malicious_ct = 7.0;  // looser than CT = 5: must clamp
  FakeOverlay port(2);
  port.mutable_graph().add_edge(0, 1);
  port.set_rate(0, 1, 120.0);
  AdaptiveThresholds adp(port, cfg);
  for (double m = 1.0; m <= 4.0; m += 1.0) adp.on_minute(m);
  port.set_rate(0, 1, 600.0);
  EXPECT_DOUBLE_EQ(adp.cut_threshold(1, 0), 5.0);
}

// ------------------------------------------------- suspicion state machine

TEST(AdaptiveSuspicion, EntryReducesBudgetAndTimedExitRestoresIt) {
  FakeOverlay port(2);
  port.mutable_graph().add_edge(0, 1);
  port.set_rate(0, 1, 120.0);
  AdaptiveThresholds adp(port, tight_config());
  for (double m = 1.0; m <= 4.0; m += 1.0) adp.on_minute(m);
  EXPECT_FALSE(adp.suspicious(0));
  EXPECT_EQ(adp.currently_suspicious(), 0u);

  // Cross r1 (240) but not r2 (480): local suspicion, budget halved.
  port.set_rate(0, 1, 300.0);
  adp.on_minute(5.0);
  EXPECT_TRUE(adp.suspicious(0));
  EXPECT_EQ(adp.currently_suspicious(), 1u);
  EXPECT_EQ(adp.suspicion_entries(), 1u);
  EXPECT_DOUBLE_EQ(port.budget(0), 0.5);

  // Back in band: the exit needs suspicion_exit_minutes consecutive
  // quiet minutes before the budget is restored.
  port.set_rate(0, 1, 120.0);
  adp.on_minute(6.0);
  EXPECT_TRUE(adp.suspicious(0));
  EXPECT_DOUBLE_EQ(port.budget(0), 0.5);
  adp.on_minute(7.0);
  EXPECT_FALSE(adp.suspicious(0));
  EXPECT_EQ(adp.currently_suspicious(), 0u);
  EXPECT_EQ(adp.suspicion_exits(), 1u);
  EXPECT_DOUBLE_EQ(port.budget(0), 1.0);
}

TEST(AdaptiveSuspicion, RelapseResetsTheExitClock) {
  FakeOverlay port(2);
  port.mutable_graph().add_edge(0, 1);
  port.set_rate(0, 1, 120.0);
  AdaptiveThresholds adp(port, tight_config());
  for (double m = 1.0; m <= 4.0; m += 1.0) adp.on_minute(m);

  port.set_rate(0, 1, 300.0);
  adp.on_minute(5.0);          // entry (r1 = 240)
  port.set_rate(0, 1, 120.0);
  adp.on_minute(6.0);          // 1 quiet minute banked
  // Relapse far above r2: poison-guarded out of the window, so the rails
  // hold, and the banked quiet minute is forfeited.
  port.set_rate(0, 1, 2000.0);
  adp.on_minute(7.0);
  port.set_rate(0, 1, 120.0);
  adp.on_minute(8.0);
  EXPECT_TRUE(adp.suspicious(0));  // only 1 quiet minute again
  adp.on_minute(9.0);
  EXPECT_FALSE(adp.suspicious(0));
  // One continuous suspicious episode: the relapse extended it rather
  // than opening a second one.
  EXPECT_EQ(adp.suspicion_entries(), 1u);
  EXPECT_EQ(adp.suspicion_exits(), 1u);
}

TEST(AdaptiveSuspicion, PoisonGuardFreezesBandUnderAttack) {
  FakeOverlay port(2);
  port.mutable_graph().add_edge(0, 1);
  port.set_rate(0, 1, 120.0);
  AdaptiveThresholds adp(port, tight_config());
  for (double m = 1.0; m <= 4.0; m += 1.0) adp.on_minute(m);
  ASSERT_DOUBLE_EQ(adp.band(0, 1).max, 120.0);

  // A flood far above r2 runs through several re-estimates. The mature
  // band must refuse every poisoned sample: the attacker cannot ramp its
  // own "normal" upward by attacking.
  port.set_rate(0, 1, 5000.0);
  for (double m = 5.0; m <= 10.0; m += 1.0) adp.on_minute(m);
  EXPECT_DOUBLE_EQ(adp.band(0, 1).max, 120.0);
  EXPECT_DOUBLE_EQ(adp.suspicion_rail(0, 1), 240.0);
  EXPECT_TRUE(adp.suspicious(0));
  EXPECT_DOUBLE_EQ(adp.cut_threshold(1, 0), 2.0);
}

TEST(AdaptiveSuspicion, DriftBetweenTheRailsKeepsAdapting) {
  FakeOverlay port(2);
  port.mutable_graph().add_edge(0, 1);
  port.set_rate(0, 1, 120.0);
  AdaptiveThresholds adp(port, tight_config());
  for (double m = 1.0; m <= 4.0; m += 1.0) adp.on_minute(m);

  // Legitimate load growth to 300 q/min sits between r1 (240) and r2
  // (480): suspicious at first, but the samples keep entering the window,
  // so the band follows and the suspicion clears without intervention.
  port.set_rate(0, 1, 300.0);
  for (double m = 5.0; m <= 12.0; m += 1.0) adp.on_minute(m);
  EXPECT_DOUBLE_EQ(adp.band(0, 1).max, 300.0);
  EXPECT_DOUBLE_EQ(adp.suspicion_rail(0, 1), 600.0);
  EXPECT_FALSE(adp.suspicious(0));
}

TEST(AdaptiveSuspicion, DepartedPeerSuspicionDissolves) {
  FakeOverlay port(3);
  port.mutable_graph().add_edge(0, 1);
  port.mutable_graph().add_edge(1, 2);
  port.set_rate(0, 1, 120.0);
  port.set_rate(1, 2, 120.0);
  AdaptiveThresholds adp(port, tight_config());
  for (double m = 1.0; m <= 4.0; m += 1.0) adp.on_minute(m);
  port.set_rate(0, 1, 999.0);
  adp.on_minute(5.0);
  ASSERT_TRUE(adp.suspicious(0));

  port.mutable_graph().set_active(0, false);  // churn takes the peer out
  adp.on_minute(6.0);
  EXPECT_FALSE(adp.suspicious(0));
  EXPECT_EQ(adp.currently_suspicious(), 0u);
}

// --------------------------------------------------------------- snapshot

TEST(AdaptiveSnapshot, SaveLoadSaveIsByteIdentical) {
  const DdPoliceConfig cfg = tight_config();
  FakeOverlay port(4);
  port.mutable_graph().add_edge(0, 1);
  port.mutable_graph().add_edge(1, 2);
  port.mutable_graph().add_edge(2, 3);
  AdaptiveThresholds a(port, cfg);
  // Mixed history: maturation, one suspicion entry, one poisoned sample.
  for (double m = 1.0; m <= 4.0; m += 1.0) {
    port.set_rate(0, 1, 100.0 + m);
    port.set_rate(1, 2, 40.0);
    port.set_rate(2, 3, 7.0);
    a.on_minute(m);
  }
  port.set_rate(0, 1, 2000.0);
  a.on_minute(5.0);

  const auto serialize = [](const AdaptiveThresholds& adp) {
    snapshot::Writer w;
    w.begin_section(snapshot::section_id("ADPT"));
    adp.save(w);
    w.end_section();
    return w.finish(0);
  };
  const auto bytes = serialize(a);

  AdaptiveThresholds b(port, cfg);
  snapshot::Reader r = snapshot::Reader::from_bytes(bytes);
  r.begin_section(snapshot::section_id("ADPT"));
  b.load(r);
  r.end_section();
  EXPECT_EQ(serialize(b), bytes);
  EXPECT_EQ(b.suspicion_entries(), a.suspicion_entries());
  EXPECT_EQ(b.currently_suspicious(), a.currently_suspicious());
  EXPECT_TRUE(b.suspicious(0));
  EXPECT_DOUBLE_EQ(b.suspicion_rail(0, 1), a.suspicion_rail(0, 1));
}

// ------------------------------------------------------------ end to end

// The reason the subsystem exists: a ramping attacker that settles at
// 400 q/min total (scale 0.02 of the 20,000 q/min flood) stays under the
// static 500 q/min warning threshold on every link — static DD-POLICE
// never opens a buddy round on it — but sits well above any learned
// normal band.
TEST(AdaptiveDetection, CutsLowAndSlowThatStaticNeverFlags) {
  experiments::ScenarioConfig cfg =
      experiments::paper_scenario(150, 10, defense::Kind::kDdPolice, 42);
  cfg.total_minutes = 24.0;
  cfg.attack.start_minute = 4.0;
  cfg.attack.sourcing = attack::SourcingStrategy::kRamp;
  cfg.attack.ramp_minutes = 6.0;
  cfg.attack.ramp_target_scale = 0.02;

  const auto agents_cut = [](const experiments::ScenarioResult& r) {
    std::set<PeerId> cut;
    for (const auto& d : r.decisions) {
      if (d.suspect < r.is_bad.size() && r.is_bad[d.suspect] != 0) {
        cut.insert(d.suspect);
      }
    }
    return cut.size();
  };

  const auto static_result = experiments::run_scenario(cfg);
  EXPECT_EQ(agents_cut(static_result), 0u);

  cfg.ddpolice.adaptive.enabled = true;
  const auto adaptive_result = experiments::run_scenario(cfg);
  EXPECT_GE(agents_cut(adaptive_result), 5u);  // a majority of the 10
  EXPECT_GT(adaptive_result.band_reestimates, 0u);
  EXPECT_GT(adaptive_result.suspicion_entries, 0u);
}

}  // namespace
}  // namespace ddp::core
