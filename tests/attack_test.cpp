// Attack substrate tests: campaign orchestration, agent selection, rejoin
// behaviour and strategy plumbing.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "attack/scenario.hpp"
#include "topology/generators.hpp"

namespace ddp::attack {
namespace {

struct World {
  topology::Graph graph;
  std::unique_ptr<topology::BandwidthMap> bandwidth;
  std::unique_ptr<workload::ContentModel> content;
  std::unique_ptr<flow::FlowNetwork> net;

  explicit World(std::size_t peers, std::uint64_t seed = 1) {
    util::Rng rng(seed);
    graph = topology::paper_topology(peers, rng);
    util::Rng bw_rng = rng.fork("bw");
    bandwidth = std::make_unique<topology::BandwidthMap>(peers, bw_rng);
    workload::ContentConfig cc;
    content = std::make_unique<workload::ContentModel>(cc, peers);
    flow::FlowConfig fc;
    fc.bandwidth_limits = false;
    net = std::make_unique<flow::FlowNetwork>(graph, *bandwidth, *content, fc,
                                              rng.fork("flow"));
  }
};

TEST(AttackScenario, StartsAtConfiguredMinute) {
  World w(100);
  AttackConfig cfg;
  cfg.agents = 10;
  cfg.start_minute = 3.0;
  AttackScenario atk(*w.net, cfg, util::Rng(2));
  w.net->add_minute_hook([&](double m) { atk.on_minute(m); });
  w.net->run_minutes(2.0);
  EXPECT_FALSE(atk.started());
  EXPECT_DOUBLE_EQ(w.net->last_minute_report().attack_issued, 0.0);
  w.net->run_minutes(3.0);
  EXPECT_TRUE(atk.started());
  EXPECT_GT(w.net->last_minute_report().attack_issued, 0.0);
}

TEST(AttackScenario, PicksDistinctActiveAgents) {
  World w(100);
  AttackConfig cfg;
  cfg.agents = 25;
  cfg.start_minute = 0.0;
  AttackScenario atk(*w.net, cfg, util::Rng(3));
  atk.on_minute(0.0);
  ASSERT_EQ(atk.agents().size(), 25u);
  std::set<PeerId> uniq(atk.agents().begin(), atk.agents().end());
  EXPECT_EQ(uniq.size(), 25u);
  for (PeerId a : atk.agents()) {
    EXPECT_TRUE(atk.is_agent(a));
    EXPECT_EQ(w.net->kind(a), PeerKind::kBad);
  }
  EXPECT_FALSE(atk.is_agent(kInvalidPeer));
}

TEST(AttackScenario, NoRejoinKeepsIsolatedAgentsOut) {
  World w(60);
  AttackConfig cfg;
  cfg.agents = 1;
  cfg.start_minute = 0.0;
  cfg.rejoin = false;
  AttackScenario atk(*w.net, cfg, util::Rng(4));
  w.net->add_minute_hook([&](double m) { atk.on_minute(m); });
  w.net->run_minutes(1.0);
  const PeerId agent = atk.agents()[0];
  w.net->on_peer_offline(agent);  // simulate the defense isolating it
  w.net->run_minutes(6.0);
  EXPECT_EQ(w.net->graph().degree(agent), 0u);
  EXPECT_EQ(atk.rejoins(), 0u);
}

TEST(AttackScenario, RejoinReconnectsAfterGap) {
  World w(60);
  AttackConfig cfg;
  cfg.agents = 1;
  cfg.start_minute = 0.0;
  cfg.rejoin = true;
  cfg.rejoin_after_minutes = 2.0;
  cfg.rejoin_links = 3;
  AttackScenario atk(*w.net, cfg, util::Rng(5));
  w.net->add_minute_hook([&](double m) { atk.on_minute(m); });
  w.net->run_minutes(1.0);
  const PeerId agent = atk.agents()[0];
  w.net->on_peer_offline(agent);
  w.net->run_minutes(6.0);
  EXPECT_GE(w.net->graph().degree(agent), 1u);
  EXPECT_EQ(atk.rejoins(), 1u);
}

TEST(AttackScenario, StrategyNames) {
  EXPECT_EQ(report_strategy_name(ReportStrategy::kHonest), "honest");
  EXPECT_EQ(report_strategy_name(ReportStrategy::kDeflate), "deflate");
  EXPECT_EQ(report_strategy_name(ReportStrategy::kInflate), "inflate");
  EXPECT_EQ(report_strategy_name(ReportStrategy::kMute), "mute");
  EXPECT_EQ(list_strategy_name(ListStrategy::kFabricate), "fabricate");
  EXPECT_EQ(list_strategy_name(ListStrategy::kWithhold), "withhold");
  EXPECT_EQ(list_strategy_name(ListStrategy::kHonest), "honest");
}

TEST(AttackScenario, MoreAgentsThanPeersClamped) {
  World w(10);
  AttackConfig cfg;
  cfg.agents = 50;
  cfg.start_minute = 0.0;
  AttackScenario atk(*w.net, cfg, util::Rng(6));
  atk.on_minute(0.0);
  EXPECT_LE(atk.agents().size(), 10u);
  EXPECT_GE(atk.agents().size(), 9u);
}

}  // namespace
}  // namespace ddp::attack
