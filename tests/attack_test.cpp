// Attack substrate tests: campaign orchestration, agent selection, rejoin
// behaviour and strategy plumbing.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "attack/scenario.hpp"
#include "experiments/scenario.hpp"
#include "topology/generators.hpp"

namespace ddp::attack {
namespace {

struct World {
  topology::Graph graph;
  std::unique_ptr<topology::BandwidthMap> bandwidth;
  std::unique_ptr<workload::ContentModel> content;
  std::unique_ptr<flow::FlowNetwork> net;

  explicit World(std::size_t peers, std::uint64_t seed = 1) {
    util::Rng rng(seed);
    graph = topology::paper_topology(peers, rng);
    util::Rng bw_rng = rng.fork("bw");
    bandwidth = std::make_unique<topology::BandwidthMap>(peers, bw_rng);
    workload::ContentConfig cc;
    content = std::make_unique<workload::ContentModel>(cc, peers);
    flow::FlowConfig fc;
    fc.bandwidth_limits = false;
    net = std::make_unique<flow::FlowNetwork>(graph, *bandwidth, *content, fc,
                                              rng.fork("flow"));
  }
};

TEST(AttackScenario, StartsAtConfiguredMinute) {
  World w(100);
  AttackConfig cfg;
  cfg.agents = 10;
  cfg.start_minute = 3.0;
  AttackScenario atk(*w.net, cfg, util::Rng(2));
  w.net->add_minute_hook([&](double m) { atk.on_minute(m); });
  w.net->run_minutes(2.0);
  EXPECT_FALSE(atk.started());
  EXPECT_DOUBLE_EQ(w.net->last_minute_report().attack_issued, 0.0);
  w.net->run_minutes(3.0);
  EXPECT_TRUE(atk.started());
  EXPECT_GT(w.net->last_minute_report().attack_issued, 0.0);
}

TEST(AttackScenario, PicksDistinctActiveAgents) {
  World w(100);
  AttackConfig cfg;
  cfg.agents = 25;
  cfg.start_minute = 0.0;
  AttackScenario atk(*w.net, cfg, util::Rng(3));
  atk.on_minute(0.0);
  ASSERT_EQ(atk.agents().size(), 25u);
  std::set<PeerId> uniq(atk.agents().begin(), atk.agents().end());
  EXPECT_EQ(uniq.size(), 25u);
  for (PeerId a : atk.agents()) {
    EXPECT_TRUE(atk.is_agent(a));
    EXPECT_EQ(w.net->kind(a), PeerKind::kBad);
  }
  EXPECT_FALSE(atk.is_agent(kInvalidPeer));
}

TEST(AttackScenario, NoRejoinKeepsIsolatedAgentsOut) {
  World w(60);
  AttackConfig cfg;
  cfg.agents = 1;
  cfg.start_minute = 0.0;
  cfg.rejoin = false;
  AttackScenario atk(*w.net, cfg, util::Rng(4));
  w.net->add_minute_hook([&](double m) { atk.on_minute(m); });
  w.net->run_minutes(1.0);
  const PeerId agent = atk.agents()[0];
  w.net->on_peer_offline(agent);  // simulate the defense isolating it
  w.net->run_minutes(6.0);
  EXPECT_EQ(w.net->graph().degree(agent), 0u);
  EXPECT_EQ(atk.rejoins(), 0u);
}

TEST(AttackScenario, RejoinReconnectsAfterGap) {
  World w(60);
  AttackConfig cfg;
  cfg.agents = 1;
  cfg.start_minute = 0.0;
  cfg.rejoin = true;
  cfg.rejoin_after_minutes = 2.0;
  cfg.rejoin_links = 3;
  AttackScenario atk(*w.net, cfg, util::Rng(5));
  w.net->add_minute_hook([&](double m) { atk.on_minute(m); });
  w.net->run_minutes(1.0);
  const PeerId agent = atk.agents()[0];
  w.net->on_peer_offline(agent);
  w.net->run_minutes(6.0);
  EXPECT_GE(w.net->graph().degree(agent), 1u);
  EXPECT_EQ(atk.rejoins(), 1u);
}

TEST(AttackScenario, StrategyNames) {
  EXPECT_EQ(report_strategy_name(ReportStrategy::kHonest), "honest");
  EXPECT_EQ(report_strategy_name(ReportStrategy::kDeflate), "deflate");
  EXPECT_EQ(report_strategy_name(ReportStrategy::kInflate), "inflate");
  EXPECT_EQ(report_strategy_name(ReportStrategy::kMute), "mute");
  EXPECT_EQ(report_strategy_name(ReportStrategy::kCollude), "collude");
  EXPECT_EQ(list_strategy_name(ListStrategy::kFabricate), "fabricate");
  EXPECT_EQ(list_strategy_name(ListStrategy::kWithhold), "withhold");
  EXPECT_EQ(list_strategy_name(ListStrategy::kHonest), "honest");
  EXPECT_EQ(sourcing_strategy_name(SourcingStrategy::kConstant), "constant");
  EXPECT_EQ(sourcing_strategy_name(SourcingStrategy::kRamp), "ramp");
  EXPECT_EQ(sourcing_strategy_name(SourcingStrategy::kPulse), "pulse");
  EXPECT_EQ(sourcing_strategy_name(SourcingStrategy::kProbe), "probe");
}

TEST(AttackScenario, StrategyNamesRoundTrip) {
  // Every enumerator survives name -> from_name (the ddpsim CLI and the
  // bench harnesses address strategies by these strings).
  for (const auto s :
       {ReportStrategy::kHonest, ReportStrategy::kInflate,
        ReportStrategy::kDeflate, ReportStrategy::kMute,
        ReportStrategy::kCollude}) {
    EXPECT_EQ(report_strategy_from_name(report_strategy_name(s)), s);
  }
  for (const auto s : {ListStrategy::kHonest, ListStrategy::kFabricate,
                       ListStrategy::kWithhold}) {
    EXPECT_EQ(list_strategy_from_name(list_strategy_name(s)), s);
  }
  for (const auto s :
       {SourcingStrategy::kConstant, SourcingStrategy::kRamp,
        SourcingStrategy::kPulse, SourcingStrategy::kProbe}) {
    EXPECT_EQ(sourcing_strategy_from_name(sourcing_strategy_name(s)), s);
  }
  EXPECT_FALSE(report_strategy_from_name("bogus").has_value());
  EXPECT_FALSE(list_strategy_from_name("").has_value());
  EXPECT_FALSE(sourcing_strategy_from_name("Constant").has_value());
}

TEST(Sourcing, ConstantScheduleIsThePaperAgent) {
  AttackConfig c;
  c.sourcing = SourcingStrategy::kConstant;
  for (const double t : {0.0, 0.5, 7.0, 1e6}) {
    EXPECT_DOUBLE_EQ(schedule_scale(c, t), 1.0);
  }
}

TEST(Sourcing, RampScheduleIsLinearAndSaturates) {
  AttackConfig c;
  c.sourcing = SourcingStrategy::kRamp;
  c.ramp_minutes = 8.0;
  c.ramp_target_scale = 0.06;
  EXPECT_DOUBLE_EQ(schedule_scale(c, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(schedule_scale(c, 4.0), 0.03);
  EXPECT_DOUBLE_EQ(schedule_scale(c, 8.0), 0.06);
  EXPECT_DOUBLE_EQ(schedule_scale(c, 100.0), 0.06);
  EXPECT_DOUBLE_EQ(schedule_scale(c, -5.0), 0.0);  // pre-activation clamps
  c.ramp_minutes = 0.0;  // degenerate ramp: jump straight to the target
  EXPECT_DOUBLE_EQ(schedule_scale(c, 0.0), 0.06);
}

TEST(Sourcing, PulseScheduleHasTheConfiguredDutyCycle) {
  AttackConfig c;
  c.sourcing = SourcingStrategy::kPulse;
  c.pulse_on_minutes = 1.0;
  c.pulse_off_minutes = 3.0;
  c.pulse_scale = 0.5;
  EXPECT_DOUBLE_EQ(schedule_scale(c, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(schedule_scale(c, 0.99), 0.5);
  EXPECT_DOUBLE_EQ(schedule_scale(c, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(schedule_scale(c, 3.99), 0.0);
  EXPECT_DOUBLE_EQ(schedule_scale(c, 4.0), 0.5);  // period wraps
  EXPECT_DOUBLE_EQ(schedule_scale(c, 41.5), 0.0);
  c.pulse_on_minutes = 0.0;  // degenerate period: always-on at pulse_scale
  c.pulse_off_minutes = 0.0;
  EXPECT_DOUBLE_EQ(schedule_scale(c, 2.0), 0.5);
}

TEST(Sourcing, ProbeScheduleStartsAtTheFirstRung) {
  // kProbe is stateful (climb until links drop, then back off); the pure
  // schedule only pins its deterministic starting point.
  AttackConfig c;
  c.sourcing = SourcingStrategy::kProbe;
  c.probe_step_scale = 0.05;
  EXPECT_DOUBLE_EQ(schedule_scale(c, 0.0), 0.05);
  EXPECT_DOUBLE_EQ(schedule_scale(c, 30.0), 0.05);
}

TEST(AttackScenario, ColludersFrameHonestForwardersUnderChurn) {
  // Input into the suspect subtracts in the indicators. A colluding
  // member covers a fellow agent by inflating the input credit (the
  // capacity-credit cap defeats that at full flood rate, so agents still
  // get cut) and frames an honest suspect by deflating it — the flood an
  // honest peer dutifully forwards then looks like issuing. With the
  // paper's churn running, collusion must raise the honest-framing count
  // without ever protecting the agents from the capacity-credit check.
  experiments::ScenarioConfig cfg =
      experiments::paper_scenario(150, 12, defense::Kind::kDdPolice, 99);
  cfg.total_minutes = 16.0;
  cfg.attack.start_minute = 2.0;

  experiments::ScenarioConfig collude = cfg;
  collude.attack.behavior.report = ReportStrategy::kCollude;

  const auto honest_run = experiments::run_scenario(cfg);
  const auto collude_run = experiments::run_scenario(collude);

  const auto cut_count = [](const experiments::ScenarioResult& r, bool bad) {
    std::set<PeerId> cut;
    for (const auto& d : r.decisions) {
      if (d.suspect < r.is_bad.size() && (r.is_bad[d.suspect] != 0) == bad) {
        cut.insert(d.suspect);
      }
    }
    return cut.size();
  };

  EXPECT_GT(cut_count(honest_run, true), 0u);
  EXPECT_GT(cut_count(collude_run, true), 0u);
  // Framing: deflated reports get honest forwarders wrongly cut...
  EXPECT_GT(cut_count(collude_run, false), cut_count(honest_run, false));
  // ...but never a majority of the 138 honest peers.
  EXPECT_LT(cut_count(collude_run, false), 138u / 2);
}

TEST(AttackScenario, MoreAgentsThanPeersClamped) {
  World w(10);
  AttackConfig cfg;
  cfg.agents = 50;
  cfg.start_minute = 0.0;
  AttackScenario atk(*w.net, cfg, util::Rng(6));
  atk.on_minute(0.0);
  EXPECT_LE(atk.agents().size(), 10u);
  EXPECT_GE(atk.agents().size(), 9u);
}

}  // namespace
}  // namespace ddp::attack
