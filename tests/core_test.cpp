// DD-POLICE core tests: the indicator arithmetic against the paper's
// worked example (Figure 2), the capacity-credit refinement, buddy-group
// rounds on engineered scenarios, list-exchange staleness, liar detection
// and cheating strategies.

#include <gtest/gtest.h>

#include <memory>

#include "core/ddpolice.hpp"
#include "flow/flow_port.hpp"
#include "core/indicators.hpp"
#include "flow/network.hpp"
#include "topology/generators.hpp"

namespace ddp::core {
namespace {

// ------------------------------------------------------------- indicators

std::vector<MemberReport> fig2_reports(double q0, double q1, double q2,
                                       double q3) {
  // Figure 2: suspect j has three neighbours m1..m3. j issues q0 and
  // forwards everything, so Q_{j,m1} = q0+q2+q3 etc. (no-dup assumption).
  std::vector<MemberReport> r(3);
  r[0] = {1, q1, q0 + q2 + q3, true};
  r[1] = {2, q2, q0 + q1 + q3, true};
  r[2] = {3, q3, q0 + q1 + q2, true};
  return r;
}

TEST(Indicators, PaperWorkedExampleGeneral) {
  // g(j,t) = q0 / q exactly (Sec. 2.2's derivation).
  const auto r = fig2_reports(500, 120, 340, 90);
  EXPECT_NEAR(general_indicator(r, 100.0), 5.0, 1e-9);
}

TEST(Indicators, PaperWorkedExampleSingle) {
  // s(j,t,i) = q0 / q for every judge i.
  const auto r = fig2_reports(700, 50, 60, 70);
  EXPECT_NEAR(single_indicator(r, 1, 100.0), 7.0, 1e-9);
  EXPECT_NEAR(single_indicator(r, 2, 100.0), 7.0, 1e-9);
  EXPECT_NEAR(single_indicator(r, 3, 100.0), 7.0, 1e-9);
}

TEST(Indicators, GoodPeerScoresAtMostIssueBound) {
  // A good peer issues <= q: indicators stay <= 1 under the model.
  const auto r = fig2_reports(80, 1000, 2000, 500);
  EXPECT_LE(general_indicator(r, 100.0), 1.0);
  EXPECT_LE(single_indicator(r, 1, 100.0), 1.0);
}

TEST(Indicators, TimeoutMembersCountAsZero) {
  // Sec. 3.4: silent members are assumed to have sent zero. When the
  // suspect's *dominant feeder* goes silent, the missing input inflates
  // the indicator — the staleness risk the paper analyzes.
  auto r = fig2_reports(0, 3000, 100, 100);  // m1 feeds almost everything
  const double honest_g = general_indicator(r, 100.0);
  EXPECT_NEAR(honest_g, 0.0, 1e-9);  // issues nothing -> exonerated
  r[0].out_to_suspect = 0.0;  // the feeder m1 times out
  r[0].in_from_suspect = 0.0;
  r[0].responded = false;
  const double g = general_indicator(r, 100.0);
  EXPECT_GT(g, 5.0);  // a zero-issuing forwarder now looks like an issuer
}

TEST(Indicators, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(general_indicator({}, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(single_indicator({}, 1, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(general_indicator(fig2_reports(1, 1, 1, 1), 0.0), 0.0);
  // Judge not in the group: no Q_ji available.
  EXPECT_DOUBLE_EQ(single_indicator(fig2_reports(1, 1, 1, 1), 99, 100.0), 0.0);
}

TEST(Indicators, CapacityCreditUnmasksSaturatedAttacker) {
  // Saturated overlay: the suspect receives far more than it can service
  // (inputs 3 x 12,000/min) yet emits 20,000/min per link — impossible
  // for a forwarder bounded by 10,000/min of processing.
  std::vector<MemberReport> r(3);
  for (PeerId m = 1; m <= 3; ++m) {
    r[m - 1] = {m, 12000.0, 20000.0, true};
  }
  // Literal Definition 2.1: masked (negative).
  EXPECT_LT(general_indicator(r, 100.0), 0.0);
  // Capacity-aware credit: unmasked.
  EXPECT_GT(general_indicator(r, 100.0, 10000.0), 5.0);
  EXPECT_GT(single_indicator(r, 1, 100.0, 10000.0), 5.0);
}

TEST(Indicators, CapacityCreditKeepsGoodForwarderSafe) {
  // A saturated good forwarder's output per link is bounded by its
  // processing rate; with the credit it still scores below any sane CT.
  std::vector<MemberReport> r(3);
  for (PeerId m = 1; m <= 3; ++m) {
    r[m - 1] = {m, 9000.0, 6500.0, true};  // out <= capacity x fan
  }
  EXPECT_LT(general_indicator(r, 100.0, 10000.0), 1.0);
  EXPECT_LT(single_indicator(r, 2, 100.0, 10000.0), 0.0);
}

TEST(Indicators, IsBadThreshold) {
  EXPECT_TRUE(is_bad(5.1, 0.0, 5.0));
  EXPECT_TRUE(is_bad(0.0, 5.1, 5.0));
  EXPECT_FALSE(is_bad(5.0, 5.0, 5.0));  // strict
  EXPECT_FALSE(is_bad(-3.0, -2.0, 5.0));
}

// ---------------------------------------------------------------- protocol

struct ProtocolWorld {
  topology::Graph graph;
  std::unique_ptr<topology::BandwidthMap> bandwidth;
  std::unique_ptr<workload::ContentModel> content;
  std::unique_ptr<flow::FlowNetwork> net;
  std::unique_ptr<flow::FlowPort> port;
  std::unique_ptr<DdPolice> police;

  ProtocolWorld(topology::Graph g, const DdPoliceConfig& cfg,
                std::uint64_t seed = 33)
      : graph(std::move(g)) {
    util::Rng rng(seed);
    util::Rng bw_rng = rng.fork("bw");
    bandwidth = std::make_unique<topology::BandwidthMap>(graph.node_count(),
                                                         bw_rng);
    workload::ContentConfig cc;
    cc.objects = 300;
    cc.mean_replicas = 10.0;
    content = std::make_unique<workload::ContentModel>(cc, graph.node_count());
    flow::FlowConfig fc;
    fc.bandwidth_limits = false;
    net = std::make_unique<flow::FlowNetwork>(graph, *bandwidth, *content, fc,
                                              rng.fork("flow"));
    port = std::make_unique<flow::FlowPort>(*net);
    police = std::make_unique<DdPolice>(*port, cfg, rng.fork("ddp"));
    net->add_minute_hook([this](double m) { police->on_minute(m); });
  }
};

TEST(DdPolice, DetectsAttackerWithinMinutes) {
  util::Rng rng(1);
  ProtocolWorld w(topology::paper_topology(120, rng), DdPoliceConfig{});
  w.net->set_kind(5, PeerKind::kBad);
  w.net->run_minutes(4.0);
  bool cut = false;
  for (const auto& d : w.police->decisions()) cut |= d.suspect == 5;
  EXPECT_TRUE(cut);
  EXPECT_EQ(w.net->graph().degree(5), 0u);  // fully isolated
  EXPECT_GT(w.police->rounds_run(), 0u);
  EXPECT_GT(w.police->suspicions(), 0u);
}

TEST(DdPolice, HonestForwardersSurvive) {
  util::Rng rng(2);
  ProtocolWorld w(topology::paper_topology(120, rng), DdPoliceConfig{});
  w.net->set_kind(5, PeerKind::kBad);
  w.net->run_minutes(5.0);
  std::size_t good_cut = 0;
  for (const auto& d : w.police->decisions()) good_cut += d.suspect != 5;
  // Static topology (no churn): buddy groups are accurate, so the
  // forwarders around the agent must be exonerated.
  EXPECT_EQ(good_cut, 0u);
}

TEST(DdPolice, NoAttackNoDecisions) {
  util::Rng rng(3);
  ProtocolWorld w(topology::paper_topology(120, rng), DdPoliceConfig{});
  w.net->run_minutes(5.0);
  EXPECT_TRUE(w.police->decisions().empty());
  EXPECT_GT(w.police->exchange_messages(), 0u);
}

TEST(DdPolice, HigherCutThresholdSlowsDetection) {
  auto first_cut_minute = [](double ct) {
    util::Rng rng(4);
    DdPoliceConfig cfg;
    cfg.cut_threshold = ct;
    ProtocolWorld w(topology::paper_topology(150, rng), cfg, 44);
    w.net->set_kind(7, PeerKind::kBad);
    w.net->run_minutes(6.0);
    for (const auto& d : w.police->decisions()) {
      if (d.suspect == 7) return d.minute;
    }
    return 999.0;
  };
  EXPECT_LE(first_cut_minute(3.0), first_cut_minute(100.0));
  EXPECT_LT(first_cut_minute(3.0), 999.0);
}

TEST(DdPolice, SnapshotsTrackAdvertisements) {
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  DdPoliceConfig cfg;
  ProtocolWorld w(std::move(g), cfg);
  w.net->run_minutes(3.0);
  const auto snap = w.police->snapshot_of(0, 1);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_TRUE((snap[0] == 0 && snap[1] == 2) || (snap[0] == 2 && snap[1] == 0));
  // 2 only knows 1's membership, not 0's (not a neighbour).
  EXPECT_TRUE(w.police->snapshot_of(2, 0).empty());
}

TEST(DdPolice, MuteReportersAreTimedOutAsZero) {
  // Star with attacker hub; all members refuse to answer. The judge's own
  // counters still show the hub's sourcing, so detection proceeds.
  topology::Graph g(5);
  for (PeerId i = 1; i < 5; ++i) g.add_edge(0, i);
  DdPoliceConfig cfg;
  ProtocolWorld w(std::move(g), cfg);
  w.net->set_kind(0, PeerKind::kBad);
  w.police->set_report_policy(
      [](PeerId, PeerId, const TrafficTruth&) -> std::optional<TrafficTruth> {
        return std::nullopt;  // everyone mute
      });
  w.net->run_minutes(3.0);
  bool cut = false;
  for (const auto& d : w.police->decisions()) cut |= d.suspect == 0;
  EXPECT_TRUE(cut);
}

TEST(DdPolice, DeflatingAgentCausesFalseCutOfVictim) {
  // The paper's Case 2: agent j under-reports what it sends to forwarder
  // m, so m's buddy group believes m issued the traffic itself.
  // Line with a fan-out: agent(0) - m(1) - {2,3,4}.
  topology::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  DdPoliceConfig cfg;
  ProtocolWorld w(std::move(g), cfg);
  w.net->set_kind(0, PeerKind::kBad);
  w.police->set_report_policy(
      [](PeerId reporter, PeerId, const TrafficTruth& t)
          -> std::optional<TrafficTruth> {
        if (reporter == 0) {
          TrafficTruth lie = t;
          lie.out_to_suspect = t.out_to_suspect * 0.02;
          return lie;
        }
        return t;
      });
  w.net->run_minutes(3.0);
  bool victim_cut = false;
  for (const auto& d : w.police->decisions()) victim_cut |= d.suspect == 1;
  EXPECT_TRUE(victim_cut);
}

TEST(DdPolice, RadiusTwoDefeatsDeflation) {
  // Same scenario, r = 2: the judges cross-check the agent's claim against
  // flow balance around it, so the forwarder is exonerated.
  topology::Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  g.add_edge(0, 5);  // the agent needs a second neighbour for balance info
  DdPoliceConfig cfg;
  cfg.buddy_radius = 2;
  ProtocolWorld w(std::move(g), cfg);
  w.net->set_kind(0, PeerKind::kBad);
  w.police->set_report_policy(
      [](PeerId reporter, PeerId, const TrafficTruth& t)
          -> std::optional<TrafficTruth> {
        if (reporter == 0) {
          TrafficTruth lie = t;
          lie.out_to_suspect = t.out_to_suspect * 0.02;
          return lie;
        }
        return t;
      });
  w.net->run_minutes(3.0);
  bool victim_cut = false;
  bool agent_cut = false;
  for (const auto& d : w.police->decisions()) {
    // Decisions by the agent itself are attacker behaviour, not errors.
    victim_cut |= d.suspect == 1 && d.judge != 0;
    agent_cut |= d.suspect == 0;
  }
  EXPECT_FALSE(victim_cut);
  EXPECT_TRUE(agent_cut);
}

TEST(DdPolice, FabricatedNeighborListDisconnectsLiar) {
  util::Rng rng(6);
  DdPoliceConfig cfg;
  ProtocolWorld w(topology::paper_topology(60, rng), cfg);
  // Peer 9 claims a non-neighbour in its advertisements.
  w.police->set_list_policy(
      [&w](PeerId owner, std::vector<PeerId> truth) {
        if (owner == 9) {
          for (PeerId fake = 0; fake < w.graph.node_count(); ++fake) {
            if (fake != 9 && !w.graph.has_edge(9, fake)) {
              truth.push_back(fake);
              break;
            }
          }
        }
        return truth;
      });
  w.net->run_minutes(3.0);
  bool liar_cut = false;
  for (const auto& d : w.police->decisions()) {
    if (d.suspect == 9 && d.list_violation) liar_cut = true;
  }
  EXPECT_TRUE(liar_cut);
}

TEST(DdPolice, WithheldNeighborDetectedByOmittedPeer) {
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  DdPoliceConfig cfg;
  ProtocolWorld w(std::move(g), cfg);
  // Peer 0 advertises only its first neighbour; the omitted one notices.
  w.police->set_list_policy([](PeerId owner, std::vector<PeerId> truth) {
    if (owner == 0 && truth.size() > 1) truth.resize(1);
    return truth;
  });
  w.net->run_minutes(3.0);
  bool cut = false;
  for (const auto& d : w.police->decisions()) {
    if (d.suspect == 0 && d.list_violation) cut = true;
  }
  EXPECT_TRUE(cut);
}

TEST(DdPolice, VerificationCanBeDisabled) {
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  DdPoliceConfig cfg;
  cfg.verify_neighbor_lists = false;
  ProtocolWorld w(std::move(g), cfg);
  w.police->set_list_policy([](PeerId owner, std::vector<PeerId> truth) {
    if (owner == 0) truth.clear();
    return truth;
  });
  w.net->run_minutes(3.0);
  EXPECT_TRUE(w.police->decisions().empty());
}

TEST(DdPolice, EventDrivenExchangeKeepsSnapshotsFresh) {
  util::Rng rng(7);
  DdPoliceConfig cfg;
  cfg.exchange_policy = ExchangePolicy::kEventDriven;
  ProtocolWorld w(topology::paper_topology(80, rng), cfg);
  w.net->run_minutes(2.0);
  // Grow a new link mid-run; the next minute everyone around it knows.
  PeerId a = 0, b = 0;
  for (a = 0; a < 80; ++a) {
    bool found = false;
    for (b = a + 1; b < 80; ++b) {
      if (!w.net->graph().has_edge(a, b)) {
        found = true;
        break;
      }
    }
    if (found) break;
  }
  w.net->mutable_graph().add_edge(a, b);
  w.net->run_minutes(1.0);
  for (PeerId n : w.net->graph().neighbors(a)) {
    const auto snap = w.police->snapshot_of(n, a);
    EXPECT_NE(std::find(snap.begin(), snap.end(), b), snap.end())
        << "neighbour " << n << " missing " << b << " in snapshot of " << a;
  }
}

TEST(DdPolice, OneRoundPerSuspectPerMinute) {
  topology::Graph g(5);
  for (PeerId i = 1; i < 5; ++i) g.add_edge(0, i);
  DdPoliceConfig cfg;
  cfg.cut_threshold = 1e12;  // never convict: keep the suspect in place
  ProtocolWorld w(std::move(g), cfg);
  w.net->set_kind(0, PeerKind::kBad);
  w.net->run_minutes(4.0);
  // Suspect 0 is flagged by all four neighbours every minute, but the
  // suppression window collapses that to one round per minute (minutes
  // 2..4: counters need one full minute to fill).
  EXPECT_LE(w.police->rounds_run(), 4u);
  EXPECT_GE(w.police->rounds_run(), 2u);
}

TEST(DdPolice, OverheadAccounting) {
  util::Rng rng(8);
  ProtocolWorld w(topology::paper_topology(100, rng), DdPoliceConfig{});
  w.net->set_kind(3, PeerKind::kBad);
  w.net->run_minutes(4.0);
  EXPECT_GT(w.police->exchange_messages(), 100u);
  EXPECT_GT(w.police->traffic_messages(), 0u);
  // The engine's traffic metric includes the reported overhead.
  EXPECT_GT(w.net->last_minute_report().overhead_messages, 0.0);
}

}  // namespace
}  // namespace ddp::core

// ------------------------------------------------- packet-engine adapter

#include "attack/packet_agent.hpp"
#include "p2p/packet_port.hpp"

namespace ddp::core {
namespace {

TEST(PacketPortDdPolice, DetectsAgentAtMessageGranularity) {
  // DD-POLICE over the packet engine: every query is an individual
  // descriptor; the monitors are real sliding windows.
  util::Rng rng(77);
  topology::Graph g = topology::paper_topology(60, rng);
  workload::ContentConfig cc;
  cc.objects = 200;
  cc.mean_replicas = 6.0;
  const workload::ContentModel content(cc, 60);
  sim::Engine engine;
  p2p::P2pConfig pc;
  p2p::PacketNetwork net(g, content, engine, pc, rng.fork("p2p"));

  p2p::PacketPort port(net);
  DdPoliceConfig cfg;
  DdPolice police(port, cfg, rng.fork("ddp"));
  engine.schedule_every(kMinute, [&]() {
    police.on_minute(to_minutes(engine.now()));
  });

  // A modest background workload plus one flooding agent.
  attack::PacketAgent agent(net, 3, 2000.0);
  engine.run_until(minutes(4.0));

  bool agent_cut = false;
  std::size_t good_cut = 0;
  for (const auto& d : police.decisions()) {
    if (d.suspect == 3) agent_cut = true;
    else if (d.judge != 3) ++good_cut;
  }
  EXPECT_TRUE(agent_cut);
  EXPECT_EQ(good_cut, 0u);
  EXPECT_EQ(net.graph().degree(3), 0u);
  EXPECT_GT(net.totals().overhead_messages, 0.0);
}

TEST(PacketPortDdPolice, QuietOverlayUndisturbed) {
  util::Rng rng(78);
  topology::Graph g = topology::paper_topology(40, rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 40);
  sim::Engine engine;
  p2p::P2pConfig pc;
  p2p::PacketNetwork net(g, content, engine, pc, rng.fork("p2p"));
  p2p::PacketPort port(net);
  DdPoliceConfig cfg;
  DdPolice police(port, cfg, rng.fork("ddp"));
  engine.schedule_every(kMinute, [&]() {
    police.on_minute(to_minutes(engine.now()));
  });
  // Light legitimate workload: a few queries per minute network-wide.
  util::Rng wl(5);
  engine.schedule_every(5.0, [&]() {
    const PeerId p = net.graph().random_active_node(wl);
    if (p != kInvalidPeer) net.issue_random_query(p);
  });
  engine.run_until(minutes(4.0));
  EXPECT_TRUE(police.decisions().empty());
}

// --------------------------------------------------------- quarantine cuts

DdPoliceConfig quarantine_config() {
  DdPoliceConfig cfg;
  cfg.cut_policy = CutPolicy::kQuarantine;
  cfg.quarantine_minutes = 2.0;
  cfg.quarantine_growth = 2.0;
  cfg.probation_minutes = 1.0;
  cfg.probation_links = 2;
  cfg.max_strikes = 3;
  return cfg;
}

TEST(QuarantineLedger, CutIsolatesThenLaddersToReinstatement) {
  util::Rng rng(21);
  ProtocolWorld w(topology::paper_topology(80, rng), DdPoliceConfig{});
  QuarantineLedger lg(*w.port, quarantine_config(), util::Rng(7));
  ASSERT_GT(w.graph.degree(5), 0u);

  lg.on_cut(5, 0.0);
  EXPECT_EQ(lg.standing(5), Standing::kQuarantined);
  EXPECT_TRUE(lg.blocked(5));
  EXPECT_EQ(w.graph.degree(5), 0u);  // fully isolated, like a permanent cut

  lg.on_minute(1.0);  // window (2 min) not over yet
  EXPECT_EQ(lg.standing(5), Standing::kQuarantined);

  lg.on_minute(2.0);  // released into probation with partial connectivity
  EXPECT_EQ(lg.standing(5), Standing::kProbation);
  EXPECT_FALSE(lg.blocked(5));
  EXPECT_GT(w.graph.degree(5), 0u);

  lg.on_minute(3.0);  // probation survived: reinstated
  EXPECT_EQ(lg.standing(5), Standing::kClear);
  ASSERT_EQ(lg.reinstatements().size(), 1u);
  EXPECT_DOUBLE_EQ(lg.reinstatements()[0].cut_minute, 0.0);
  EXPECT_DOUBLE_EQ(lg.reinstatements()[0].reinstate_minute, 3.0);
  EXPECT_EQ(lg.stats().quarantines, 1u);
  EXPECT_EQ(lg.stats().probations, 1u);
  EXPECT_EQ(lg.stats().reinstatements, 1u);
  EXPECT_TRUE(lg.consistent());
}

TEST(QuarantineLedger, RepeatOffensesGrowTheWindowAndEndInBan) {
  util::Rng rng(22);
  ProtocolWorld w(topology::paper_topology(80, rng), DdPoliceConfig{});
  QuarantineLedger lg(*w.port, quarantine_config(), util::Rng(8));

  lg.on_cut(5, 0.0);        // strike 1: window 2, release at 2
  lg.on_minute(2.0);        // probation
  lg.on_cut(5, 2.5);        // strike 2 during probation: window 2*2 = 4
  EXPECT_EQ(lg.strikes(5), 2);
  EXPECT_EQ(lg.standing(5), Standing::kQuarantined);
  lg.on_minute(4.0);        // 2.5 + 4 = 6.5 not reached
  EXPECT_EQ(lg.standing(5), Standing::kQuarantined);
  lg.on_minute(6.5);
  EXPECT_EQ(lg.standing(5), Standing::kProbation);
  lg.on_cut(5, 7.0);        // strike 3 == max_strikes: banned for good
  EXPECT_EQ(lg.standing(5), Standing::kBanned);
  EXPECT_EQ(w.graph.degree(5), 0u);
  lg.on_cut(5, 8.0);        // further decisions are no-ops
  EXPECT_EQ(lg.stats().bans, 1u);
  EXPECT_EQ(lg.stats().quarantines, 2u);
  EXPECT_TRUE(lg.reinstatements().empty());
  EXPECT_TRUE(lg.consistent());
}

TEST(QuarantineLedger, RejoinEdgesWhileBlockedAreStripped) {
  // A churn rejoin (or a cooperative neighbour) wires a quarantined peer
  // back in; the next sweep must strip the edges again.
  util::Rng rng(23);
  ProtocolWorld w(topology::paper_topology(80, rng), DdPoliceConfig{});
  QuarantineLedger lg(*w.port, quarantine_config(), util::Rng(9));
  lg.on_cut(5, 0.0);
  ASSERT_EQ(w.graph.degree(5), 0u);

  ASSERT_TRUE(w.graph.add_edge(5, 6));
  w.net->on_edge_added(5, 6);
  std::string why;
  EXPECT_FALSE(lg.consistent(&why));  // the leak is detectable
  EXPECT_NE(why.find("edges"), std::string::npos);

  lg.on_minute(1.0);
  EXPECT_EQ(w.graph.degree(5), 0u);
  EXPECT_GE(lg.stats().re_isolations, 1u);
  EXPECT_TRUE(lg.consistent());
}

TEST(QuarantineLedger, OfflineReleaseDeferredUntilPeerReturns) {
  util::Rng rng(24);
  ProtocolWorld w(topology::paper_topology(80, rng), DdPoliceConfig{});
  QuarantineLedger lg(*w.port, quarantine_config(), util::Rng(10));
  lg.on_cut(5, 0.0);
  w.graph.set_active(5, false);  // churn takes the peer offline

  lg.on_minute(2.0);  // release due, but the peer is gone
  EXPECT_EQ(lg.standing(5), Standing::kQuarantined);
  EXPECT_GE(lg.stats().deferred_releases, 1u);

  w.graph.set_active(5, true);
  lg.on_minute(3.0);  // probation starts only once it is back
  EXPECT_EQ(lg.standing(5), Standing::kProbation);
  EXPECT_GT(w.graph.degree(5), 0u);
  EXPECT_TRUE(lg.consistent());
}

TEST(DdPolice, QuarantinePolicyLaddersARelentlessAttacker) {
  // With the quarantine policy the protocol hands cuts to the ledger: the
  // attacker is isolated, paroled, re-detected on probation (its budget
  // scales the flood but not below CT), and eventually banned.
  util::Rng rng(31);
  DdPoliceConfig cfg = quarantine_config();
  cfg.quarantine_minutes = 1.0;
  ProtocolWorld w(topology::paper_topology(120, rng), cfg);
  ASSERT_NE(w.police->ledger(), nullptr);
  w.net->set_kind(5, PeerKind::kBad);
  w.net->run_minutes(16.0);

  const QuarantineLedger& lg = *w.police->ledger();
  EXPECT_GE(lg.stats().quarantines, 2u);   // caught more than once
  EXPECT_EQ(lg.standing(5), Standing::kBanned);
  EXPECT_EQ(w.net->graph().degree(5), 0u);
  EXPECT_TRUE(lg.consistent());
}

TEST(DdPolice, PermanentPolicyBuildsNoLedger) {
  util::Rng rng(32);
  ProtocolWorld w(topology::paper_topology(60, rng), DdPoliceConfig{});
  EXPECT_EQ(w.police->ledger(), nullptr);
}

// --------------------------------------------------------- config checking

TEST(ConfigValidate, AcceptsDefaults) {
  EXPECT_EQ(validate(DdPoliceConfig{}), "");
  EXPECT_EQ(validate(quarantine_config()), "");
}

TEST(ConfigValidate, RejectsOutOfRangeKnobs) {
  DdPoliceConfig cfg;
  cfg.cut_threshold = 0.0;
  EXPECT_NE(validate(cfg), "");

  cfg = DdPoliceConfig{};
  cfg.buddy_radius = 3;
  EXPECT_NE(validate(cfg), "");

  cfg = DdPoliceConfig{};
  cfg.probation_budget = 1.5;
  EXPECT_NE(validate(cfg), "");

  cfg = DdPoliceConfig{};
  cfg.quarantine_growth = 0.5;
  EXPECT_NE(validate(cfg), "");

  cfg = DdPoliceConfig{};
  cfg.max_strikes = 0;
  EXPECT_NE(validate(cfg), "");
}

TEST(ConfigValidate, MessagesNameTheKnob) {
  DdPoliceConfig cfg;
  cfg.quarantine_minutes = -1.0;
  EXPECT_NE(validate(cfg).find("quarantine_minutes"), std::string::npos);
}

}  // namespace
}  // namespace ddp::core
