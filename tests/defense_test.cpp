// Defense-layer tests: the naive rate-cut strawman of Sec. 2.1 (cuts
// innocent forwarders), the fair-share comparator [21], and the DD-POLICE
// wrapper plumbing.

#include <gtest/gtest.h>

#include <memory>

#include "defense/defense.hpp"
#include "flow/flow_port.hpp"
#include "experiments/scenario.hpp"
#include "topology/generators.hpp"

namespace ddp::defense {
namespace {

struct World {
  topology::Graph graph;
  std::unique_ptr<topology::BandwidthMap> bandwidth;
  std::unique_ptr<workload::ContentModel> content;
  std::unique_ptr<flow::FlowNetwork> net;

  explicit World(std::size_t peers, std::uint64_t seed = 9) {
    util::Rng rng(seed);
    graph = topology::paper_topology(peers, rng);
    util::Rng bw_rng = rng.fork("bw");
    bandwidth = std::make_unique<topology::BandwidthMap>(peers, bw_rng);
    workload::ContentConfig cc;
    content = std::make_unique<workload::ContentModel>(cc, peers);
    flow::FlowConfig fc;
    fc.bandwidth_limits = false;
    net = std::make_unique<flow::FlowNetwork>(graph, *bandwidth, *content, fc,
                                              rng.fork("flow"));
  }
};

TEST(KindNames, AllDistinct) {
  EXPECT_EQ(kind_name(Kind::kNone), "none");
  EXPECT_EQ(kind_name(Kind::kDdPolice), "dd-police");
  EXPECT_EQ(kind_name(Kind::kNaiveCut), "naive-cut");
  EXPECT_EQ(kind_name(Kind::kFairShare), "fair-share");
}

TEST(NoDefense, DoesNothing) {
  NoDefense d;
  d.on_minute(1.0);
  EXPECT_TRUE(d.decisions().empty());
  EXPECT_EQ(d.name(), "none");
}

TEST(NaiveCut, CutsTheAttackerButAlsoForwarders) {
  World w(120);
  w.net->set_kind(3, PeerKind::kBad);
  flow::FlowPort port(*w.net);
  NaiveCutDefense naive(port, 500.0);
  w.net->add_minute_hook([&](double m) { naive.on_minute(m); });
  w.net->run_minutes(4.0);
  bool agent_cut = false;
  std::size_t innocents = 0;
  for (const auto& d : naive.decisions()) {
    if (d.suspect == 3) agent_cut = true;
    else ++innocents;
  }
  EXPECT_TRUE(agent_cut);
  // Sec. 2.1: "disconnecting all the peers who send out a large number of
  // queries is dangerous" — the strawman cuts innocent forwarders too.
  EXPECT_GT(innocents, 0u);
}

TEST(NaiveCut, QuietNetworkUntouched) {
  World w(80);
  flow::FlowPort port(*w.net);
  NaiveCutDefense naive(port, 500.0);
  w.net->add_minute_hook([&](double m) { naive.on_minute(m); });
  w.net->run_minutes(3.0);
  EXPECT_TRUE(naive.decisions().empty());
}

TEST(DdPoliceDefense, WrapsProtocol) {
  World w(100);
  w.net->set_kind(7, PeerKind::kBad);
  core::DdPoliceConfig cfg;
  flow::FlowPort port(*w.net);
  DdPoliceDefense ddp(port, cfg, util::Rng(5));
  w.net->add_minute_hook([&](double m) { ddp.on_minute(m); });
  w.net->run_minutes(4.0);
  EXPECT_EQ(ddp.name(), "dd-police");
  bool agent_cut = false;
  for (const auto& d : ddp.decisions()) agent_cut |= d.suspect == 7;
  EXPECT_TRUE(agent_cut);
  EXPECT_GT(ddp.protocol().exchange_messages(), 0u);
}

TEST(FairShare, ScenarioLevelComparisonAgainstNone) {
  // Fair share should preserve noticeably more search success than the
  // undefended network under the same attack (and never disconnect).
  using namespace ddp::experiments;
  ScenarioConfig none = paper_scenario(150, 10, Kind::kNone, 77);
  none.total_minutes = 12.0;
  none.churn.enabled = false;
  ScenarioConfig fair = none;
  fair.defense = Kind::kFairShare;
  const auto r_none = run_scenario(none);
  const auto r_fair = run_scenario(fair);
  EXPECT_GT(r_fair.summary.avg_success_rate,
            r_none.summary.avg_success_rate + 0.02);
  EXPECT_TRUE(r_fair.decisions.empty());
}

TEST(QuarantineScenario, RejoiningAttackersClimbTheLadderUnderChurn) {
  // Churn and attack rejoin both re-wire peers behind the ledger's back;
  // the sweep must keep blocked peers isolated and the ladder must still
  // converge on persistent offenders.
  using namespace ddp::experiments;
  ScenarioConfig cfg = paper_scenario(150, 15, Kind::kDdPolice, 99);
  cfg.total_minutes = 18.0;
  cfg.attack.rejoin = true;
  cfg.ddpolice.cut_policy = core::CutPolicy::kQuarantine;
  cfg.ddpolice.quarantine_minutes = 2.0;
  cfg.ddpolice.probation_minutes = 1.0;
  cfg.ddpolice.max_strikes = 3;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.quarantine.quarantines, 0u);
  // Repeat offenders must escalate: with rejoin on, somebody is caught
  // again — more quarantine episodes than agents, or an outright ban.
  EXPECT_TRUE(r.quarantine.bans > 0 || r.quarantine.quarantines > 15u);
  // Cut agents with pending rejoins were re-wired at least once and the
  // sweep had to strip the leaked edges.
  EXPECT_GT(r.quarantine.re_isolations, 0u);
}

TEST(QuarantineScenario, ChurnOfflineQuarantineLeavesNoLeakedState) {
  // Quarantined peers that churn offline must not leak standing: the run
  // must end with a coherent ledger (verified inside the scenario via the
  // quarantine stats) and deferred releases accounted for.
  using namespace ddp::experiments;
  ScenarioConfig cfg = paper_scenario(150, 15, Kind::kDdPolice, 101);
  cfg.total_minutes = 18.0;
  cfg.churn.mean_lifetime = minutes(6.0);  // aggressive churn
  cfg.churn.lifetime_variance = 3.0 * kMinute * kMinute;
  cfg.ddpolice.cut_policy = core::CutPolicy::kQuarantine;
  cfg.ddpolice.quarantine_minutes = 3.0;
  cfg.ddpolice.probation_minutes = 2.0;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.quarantine.quarantines, 0u);
  // Probations can never outnumber releases from quarantine, and every
  // reinstatement requires a probation first.
  EXPECT_LE(r.quarantine.reinstatements, r.quarantine.probations);
  EXPECT_LE(r.quarantine.probations, r.quarantine.quarantines);
}

TEST(QuarantineScenario, PermanentPolicyReportsNoQuarantineActivity) {
  using namespace ddp::experiments;
  ScenarioConfig cfg = paper_scenario(120, 10, Kind::kDdPolice, 55);
  cfg.total_minutes = 12.0;
  const auto r = run_scenario(cfg);  // default CutPolicy::kPermanent
  EXPECT_EQ(r.quarantine.quarantines, 0u);
  EXPECT_EQ(r.quarantine.bans, 0u);
  EXPECT_TRUE(r.reinstatements.empty());
}

}  // namespace
}  // namespace ddp::defense
