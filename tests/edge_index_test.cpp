// EdgeIndex / EdgeMap / PeerMap tests: slot reuse and generation
// invalidation under randomized churn, iteration-order determinism, the
// teardown-symmetry regression (every layer's disconnect path must release
// the slot), and cross-engine agreement on the live directed edge set.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "experiments/scenario.hpp"
#include "flow/network.hpp"
#include "p2p/network.hpp"
#include "topology/edge_index.hpp"
#include "topology/generators.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace ddp::topology {
namespace {

using DirectedEdge = std::pair<PeerId, PeerId>;

/// Live directed edge set as the index sees it.
std::set<DirectedEdge> live_set_from_index(const EdgeIndex& ei) {
  std::set<DirectedEdge> out;
  for (EdgeIndex::Slot s = 0; s < ei.capacity(); ++s) {
    if (ei.live(s)) out.insert({ei.from(s), ei.to(s)});
  }
  return out;
}

/// Live directed edge set as the adjacency lists see it.
std::set<DirectedEdge> live_set_from_adjacency(const Graph& g) {
  std::set<DirectedEdge> out;
  for (PeerId p = 0; p < g.node_count(); ++p) {
    for (PeerId n : g.neighbors(p)) out.insert({p, n});
  }
  return out;
}

// ------------------------------------------------------------ EdgeIndex

TEST(EdgeIndex, AcquireReleaseBasics) {
  EdgeIndex ei;
  const auto [uv, vu] = ei.acquire_pair(3, 7);
  EXPECT_EQ(ei.live_count(), 2u);
  EXPECT_TRUE(ei.live(uv));
  EXPECT_TRUE(ei.live(vu));
  EXPECT_EQ(ei.from(uv), 3u);
  EXPECT_EQ(ei.to(uv), 7u);
  EXPECT_EQ(ei.from(vu), 7u);
  EXPECT_EQ(ei.to(vu), 3u);
  EXPECT_EQ(ei.reverse(uv), vu);
  EXPECT_EQ(ei.reverse(vu), uv);
  std::string why;
  EXPECT_TRUE(ei.consistent(&why)) << why;

  // Releasing either direction kills both.
  const std::uint32_t gen_uv = ei.generation(uv);
  ei.release(uv);
  EXPECT_EQ(ei.live_count(), 0u);
  EXPECT_FALSE(ei.live(uv));
  EXPECT_FALSE(ei.live(vu));
  EXPECT_NE(ei.generation(uv), gen_uv);
  EXPECT_TRUE(ei.consistent(&why)) << why;
}

TEST(EdgeIndex, SlotReuseBoundsCapacityUnderRandomizedChurn) {
  // Random add/remove churn: capacity must track the *high-water mark* of
  // concurrently live edges, not the total number of edges ever created.
  util::Rng rng(42);
  Graph g(30);
  std::vector<std::pair<PeerId, PeerId>> edges;
  std::size_t high_water = 0;
  for (int round = 0; round < 2000; ++round) {
    const bool add = edges.empty() || (rng.uniform() < 0.55);
    if (add) {
      const PeerId a = static_cast<PeerId>(rng.below(30));
      const PeerId b = static_cast<PeerId>(rng.below(30));
      if (a == b || g.has_edge(a, b)) continue;
      ASSERT_TRUE(g.add_edge(a, b));
      edges.push_back({a, b});
    } else {
      const std::size_t i = rng.below(static_cast<std::uint32_t>(edges.size()));
      ASSERT_TRUE(g.remove_edge(edges[i].first, edges[i].second));
      edges[i] = edges.back();
      edges.pop_back();
    }
    high_water = std::max(high_water, 2 * edges.size());
  }
  const EdgeIndex& ei = g.edge_index();
  EXPECT_EQ(ei.live_count(), 2 * edges.size());
  EXPECT_LE(ei.capacity(), high_water);  // free-list reuse, no growth leak
  std::string why;
  ASSERT_TRUE(ei.consistent(&why)) << why;
  EXPECT_EQ(live_set_from_index(ei), live_set_from_adjacency(g));
}

TEST(EdgeIndex, GenerationInvalidatesStaleEdgeMapEntries) {
  Graph g(4);
  ASSERT_TRUE(g.add_edge(0, 1));
  const EdgeIndex::Slot s01 = g.edge_slot(0, 1);
  ASSERT_NE(s01, EdgeIndex::kInvalidSlot);

  EdgeMap<int> m(g.edge_index());
  m.touch(s01) = 41;
  ASSERT_NE(m.find(s01), nullptr);
  EXPECT_EQ(*m.find(s01), 41);

  // Tear the edge down: the entry must read as absent without any erase.
  ASSERT_TRUE(g.remove_edge(0, 1));
  EXPECT_EQ(m.find(s01), nullptr);

  // Re-adding an edge recycles the slot (LIFO free list) with a bumped
  // generation: the stale value is unreadable, touch() resets it.
  ASSERT_TRUE(g.add_edge(2, 3));
  const EdgeIndex::Slot s23 = g.edge_slot(2, 3);
  const EdgeIndex::Slot s32 = g.edge_slot(3, 2);
  EXPECT_TRUE(s23 == s01 || s32 == s01);  // slot recycled
  EXPECT_EQ(m.find(s01), nullptr);        // but the old entry is dead
  EXPECT_EQ(m.touch(s01), 0);             // reset on first touch
}

// -------------------------------------------------------------- EdgeMap

TEST(EdgeMap, IterationIsSlotOrderedAndDeterministic) {
  // Two graphs built by the same add/remove history must present the same
  // slots in the same order (slot assignment is a pure function of the
  // history, never of hash layout or allocation addresses).
  const auto build = [](Graph& g, EdgeMap<int>& m) {
    ASSERT_TRUE(g.add_edge(0, 1));
    ASSERT_TRUE(g.add_edge(1, 2));
    ASSERT_TRUE(g.add_edge(2, 3));
    ASSERT_TRUE(g.remove_edge(1, 2));  // frees slots into the LIFO list
    ASSERT_TRUE(g.add_edge(3, 4));     // recycles them
    ASSERT_TRUE(g.add_edge(4, 0));     // extends the slab
    for (PeerId p = 0; p < g.node_count(); ++p) {
      for (const std::uint32_t s : g.out_slots(p)) m.touch(s) = static_cast<int>(p);
    }
  };
  Graph g1(5), g2(5);
  EdgeMap<int> m1(g1.edge_index()), m2(g2.edge_index());
  build(g1, m1);
  build(g2, m2);

  std::vector<std::uint32_t> order1, order2;
  m1.for_each([&](std::uint32_t s, int&) { order1.push_back(s); });
  m2.for_each([&](std::uint32_t s, int&) { order2.push_back(s); });
  EXPECT_EQ(order1, order2);
  EXPECT_TRUE(std::is_sorted(order1.begin(), order1.end()));  // slot order
  EXPECT_EQ(order1.size(), g1.edge_index().live_count());

  // The visited (from, to) pairs agree too, pairwise in order.
  for (std::size_t i = 0; i < order1.size(); ++i) {
    EXPECT_EQ(g1.edge_index().from(order1[i]), g2.edge_index().from(order2[i]));
    EXPECT_EQ(g1.edge_index().to(order1[i]), g2.edge_index().to(order2[i]));
  }
}

TEST(EdgeMap, TouchFindEraseSemantics) {
  Graph g(3);
  ASSERT_TRUE(g.add_edge(0, 1));
  const EdgeIndex::Slot s = g.edge_slot(0, 1);
  EdgeMap<int> m(g.edge_index());

  EXPECT_EQ(m.find(s), nullptr);  // never touched
  m.touch(s) = 7;
  ASSERT_NE(m.find(s), nullptr);
  m.erase(s);
  EXPECT_EQ(m.find(s), nullptr);  // erased while the edge is still live
  EXPECT_EQ(m.touch(s), 0);       // and touch() recreates fresh
  EXPECT_EQ(m.find(EdgeIndex::kInvalidSlot), nullptr);  // invalid is safe
}

// -------------------------------------------------------------- PeerMap

TEST(PeerMap, DefaultAbsentGrowsOnDemandIteratesInIdOrder) {
  PeerMap<int> m;
  EXPECT_EQ(m.extent(), 0u);
  EXPECT_EQ(m.find(5), nullptr);
  m[5] = 50;
  m[2] = 20;
  EXPECT_EQ(m.extent(), 6u);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(*m.find(5), 50);
  EXPECT_EQ(*m.find(3), 0);  // inside extent, default-valued

  std::vector<PeerId> order;
  m.for_each([&](PeerId p, int&) { order.push_back(p); });
  EXPECT_EQ(order, (std::vector<PeerId>{0, 1, 2, 3, 4, 5}));
}

// -------------------------------------- teardown symmetry (regression)

TEST(TeardownSymmetry, PacketEngineChurnReleasesSlotsBothDirections) {
  // Alternating add/remove churn through the packet engine's
  // connect/disconnect: every teardown must release both directed slots
  // (the pre-index code risked forgetting one direction's monitor).
  util::Rng topo_rng(9);
  Graph graph = paper_topology(60, topo_rng);
  workload::ContentConfig cc;
  cc.objects = 16;
  workload::ContentModel content(cc, graph.node_count());
  sim::Engine engine;
  p2p::P2pConfig cfg;
  p2p::PacketNetwork net(graph, content, engine, cfg, util::Rng(17));

  const std::size_t cap_before_churn = graph.edge_index().capacity();
  util::Rng rng(23);
  double t = 1.0;
  for (int round = 0; round < 200; ++round) {
    const PeerId a = static_cast<PeerId>(rng.below(60));
    const PeerId b = static_cast<PeerId>(rng.below(60));
    if (a == b) continue;
    if (graph.has_edge(a, b)) {
      net.disconnect(a, b);
    } else {
      net.connect(a, b);
    }
    // Interleave traffic so monitors write state on the churned links.
    net.issue_random_query(static_cast<PeerId>(rng.below(60)));
    engine.run_until(t);
    t += 1.0;
    ASSERT_EQ(graph.edge_index().live_count(), 2 * graph.edge_count());
  }
  std::string why;
  ASSERT_TRUE(graph.edge_index().consistent(&why)) << why;
  EXPECT_EQ(live_set_from_index(graph.edge_index()),
            live_set_from_adjacency(graph));
  // Alternating churn reuses freed slots: the slab grows by at most the
  // net edge-count increase, never by the churn volume.
  const std::size_t net_growth =
      2 * graph.edge_count() > cap_before_churn
          ? 2 * graph.edge_count() - cap_before_churn
          : 0;
  EXPECT_LE(graph.edge_index().capacity(), cap_before_churn + net_growth + 2);
}

TEST(TeardownSymmetry, FlowEngineDisconnectReleasesSlots) {
  util::Rng topo_rng(4);
  Graph graph = paper_topology(50, topo_rng);
  util::Rng rng(5);
  util::Rng bw_rng = rng.fork("bw");
  topology::BandwidthMap bw(graph.node_count(), bw_rng);
  workload::ContentConfig cc;
  cc.objects = 100;
  workload::ContentModel content(cc, graph.node_count());
  flow::FlowConfig fcfg;
  flow::FlowNetwork net(graph, bw, content, fcfg, rng.fork("flow"));

  net.run_minutes(1.0);  // populate per-link flow state
  std::vector<DirectedEdge> cut;
  for (const DirectedEdge& e : live_set_from_adjacency(graph)) {
    if (e.first < e.second && cut.size() < 20) cut.push_back(e);
  }
  for (const DirectedEdge& e : cut) {
    net.disconnect(e.first, e.second);
    ASSERT_EQ(graph.edge_slot(e.first, e.second), EdgeIndex::kInvalidSlot);
  }
  ASSERT_EQ(graph.edge_index().live_count(), 2 * graph.edge_count());
  net.run_minutes(1.0);  // engine keeps running over the churned index
  std::string why;
  EXPECT_TRUE(graph.edge_index().consistent(&why)) << why;
  EXPECT_EQ(live_set_from_index(graph.edge_index()),
            live_set_from_adjacency(graph));
}

// --------------------------------------------------- cross-engine check

TEST(CrossEngine, LiveEdgeSetAgreementEveryMinute) {
  // The flow engine, the packet engine, and a plain reference graph apply
  // the same edge add/remove history; after every simulated minute all
  // three must agree on the live directed edge set — no engine's teardown
  // path may leak or drop a direction.
  const std::size_t n = 40;
  const auto make_graph = [&] {
    util::Rng r(77);
    return paper_topology(n, r);
  };
  Graph g_ref = make_graph();
  Graph g_flow = make_graph();
  Graph g_p2p = make_graph();
  ASSERT_EQ(live_set_from_adjacency(g_ref), live_set_from_adjacency(g_flow));

  util::Rng rng(31);
  util::Rng bw_rng = rng.fork("bw");
  topology::BandwidthMap bw(n, bw_rng);
  workload::ContentConfig cc;
  cc.objects = 50;
  workload::ContentModel content(cc, n);
  flow::FlowConfig fcfg;
  flow::FlowNetwork flow_net(g_flow, bw, content, fcfg, rng.fork("flow"));
  sim::Engine engine;
  p2p::P2pConfig pcfg;
  p2p::PacketNetwork p2p_net(g_p2p, content, engine, pcfg, rng.fork("p2p"));

  util::Rng churn(13);
  for (int minute = 1; minute <= 8; ++minute) {
    for (int op = 0; op < 6; ++op) {
      const PeerId a = static_cast<PeerId>(churn.below(static_cast<std::uint32_t>(n)));
      const PeerId b = static_cast<PeerId>(churn.below(static_cast<std::uint32_t>(n)));
      if (a == b) continue;
      if (g_ref.has_edge(a, b)) {
        ASSERT_TRUE(g_ref.remove_edge(a, b));
        flow_net.disconnect(a, b);
        p2p_net.disconnect(a, b);
      } else {
        ASSERT_TRUE(g_ref.add_edge(a, b));
        ASSERT_TRUE(g_flow.add_edge(a, b));
        flow_net.on_edge_added(a, b);
        ASSERT_TRUE(p2p_net.connect(a, b));
      }
    }
    flow_net.run_minutes(1.0);
    p2p_net.issue_random_query(static_cast<PeerId>(churn.below(static_cast<std::uint32_t>(n))));
    engine.run_until(minute * 60.0);

    const auto ref = live_set_from_adjacency(g_ref);
    ASSERT_EQ(live_set_from_index(g_flow.edge_index()), ref)
        << "flow live-edge set diverged at minute " << minute;
    ASSERT_EQ(live_set_from_index(g_p2p.edge_index()), ref)
        << "p2p live-edge set diverged at minute " << minute;
    std::string why;
    ASSERT_TRUE(g_flow.edge_index().consistent(&why)) << why;
    ASSERT_TRUE(g_p2p.edge_index().consistent(&why)) << why;
  }
}

TEST(CrossEngine, DdPoliceScenarioIndexStaysConsistentEveryMinute) {
  // Full defended scenario (attack + churn + DD-POLICE cuts + overlay
  // maintenance): the shared index must match the adjacency lists after
  // every completed minute, no matter which layer tore an edge down.
  auto cfg = experiments::paper_scenario(150, 8, defense::Kind::kDdPolice, 3);
  cfg.total_minutes = 8.0;
  cfg.warmup_minutes = 1.0;
  int checked = 0;
  cfg.inspect = [&](double, const experiments::ScenarioView& view) {
    const Graph& g = view.net->graph();
    std::string why;
    ASSERT_TRUE(g.edge_index().consistent(&why)) << why;
    ASSERT_EQ(live_set_from_index(g.edge_index()), live_set_from_adjacency(g));
    ASSERT_EQ(g.edge_index().live_count(), 2 * g.edge_count());
    ++checked;
  };
  (void)experiments::run_scenario(cfg);
  EXPECT_GE(checked, 8);
}

}  // namespace
}  // namespace ddp::topology
