// Fault-injection subsystem tests: channel fate determinism and byte
// corruption, the peer crash/stall/slow timeline, and the hardened
// DD-POLICE contract — a zero-probability plane leaves decisions
// bit-identical, a lossy one drives the timeout/retry machinery without
// breaking detection.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ddpolice.hpp"
#include "flow/flow_port.hpp"
#include "fault/plane.hpp"
#include "flow/network.hpp"
#include "topology/generators.hpp"

namespace ddp::fault {
namespace {

// ----------------------------------------------------------------- channel

TEST(UnreliableChannel, DeterministicFatesForSameSeed) {
  ChannelFaultConfig cfg;
  cfg.drop_probability = 0.3;
  cfg.duplicate_probability = 0.1;
  cfg.corrupt_probability = 0.2;
  cfg.delay_jitter_seconds = 2.0;
  util::Rng a(99);
  util::Rng b(99);
  UnreliableChannel ca(cfg, a.fork("ch"));
  UnreliableChannel cb(cfg, b.fork("ch"));
  for (int i = 0; i < 500; ++i) {
    const Transfer ta = ca.transfer();
    const Transfer tb = cb.transfer();
    ASSERT_EQ(ta.delivered, tb.delivered);
    ASSERT_EQ(ta.copies, tb.copies);
    ASSERT_EQ(ta.corrupted, tb.corrupted);
    ASSERT_EQ(ta.delay, tb.delay);  // exact: same draws, same arithmetic
  }
  EXPECT_EQ(ca.counters().dropped, cb.counters().dropped);
  EXPECT_GT(ca.counters().dropped, 0u);
  EXPECT_GT(ca.counters().duplicated, 0u);
  EXPECT_GT(ca.counters().corrupted, 0u);
  EXPECT_GT(ca.counters().delay_seconds_total, 0.0);
}

TEST(UnreliableChannel, QuietChannelIsPerfectAndDrawless) {
  UnreliableChannel ch(ChannelFaultConfig{}, util::Rng(7));
  EXPECT_FALSE(ch.active());
  for (int i = 0; i < 100; ++i) {
    const Transfer t = ch.transfer();
    EXPECT_TRUE(t.delivered);
    EXPECT_FALSE(t.corrupted);
    EXPECT_EQ(t.copies, 1u);
    EXPECT_EQ(t.delay, 0.0);
  }
  // Short-circuit: the quiet channel never even counts, let alone draws.
  EXPECT_EQ(ch.counters().transfers, 0u);
}

TEST(UnreliableChannel, CorruptAlwaysDamagesNonEmptyBuffers) {
  ChannelFaultConfig cfg;
  cfg.corrupt_probability = 1.0;
  UnreliableChannel ch(cfg, util::Rng(21));
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> original(40);
    for (std::size_t k = 0; k < original.size(); ++k) {
      original[k] = static_cast<std::uint8_t>(k * 13);
    }
    auto damaged = original;
    ch.corrupt(damaged);
    // Either truncated (strictly shorter) or bit-flipped (same size,
    // different bytes) — never a silent no-op.
    EXPECT_LE(damaged.size(), original.size());
    EXPECT_NE(damaged, original);
  }
  std::vector<std::uint8_t> empty;
  ch.corrupt(empty);  // must not crash nor grow
  EXPECT_TRUE(empty.empty());
}

// ------------------------------------------------------------- peer faults

TEST(PeerFaultInjector, CrashStopIsPermanentAndFiresOnce) {
  PeerFaultConfig cfg;
  cfg.crash_probability_per_minute = 1.0;
  PeerFaultInjector inj(cfg, 10, util::Rng(5));
  std::vector<int> crashes(10, 0);
  inj.on_crash = [&](PeerId p) { ++crashes[p]; };
  for (int m = 1; m <= 4; ++m) inj.on_minute(static_cast<double>(m));
  EXPECT_EQ(inj.crash_count(), 10u);
  for (PeerId p = 0; p < 10; ++p) {
    EXPECT_EQ(crashes[p], 1) << "peer " << p;
    EXPECT_TRUE(inj.is_crashed(p));
    EXPECT_FALSE(inj.is_responsive(p));
  }
}

TEST(PeerFaultInjector, StallsPairWithResumes) {
  PeerFaultConfig cfg;
  cfg.stall_probability_per_minute = 0.5;
  cfg.stall_duration_seconds = 30.0;
  PeerFaultInjector inj(cfg, 50, util::Rng(11));
  std::uint64_t stall_events = 0;
  std::uint64_t resume_events = 0;
  inj.on_stall = [&](PeerId) { ++stall_events; };
  inj.on_resume = [&](PeerId) { ++resume_events; };
  for (int m = 1; m <= 6; ++m) inj.on_minute(static_cast<double>(m));
  EXPECT_GT(inj.stall_count(), 0u);
  EXPECT_EQ(stall_events, inj.stall_count());
  EXPECT_EQ(resume_events, inj.resume_count());
  EXPECT_GT(inj.resume_count(), 0u);
  EXPECT_LE(inj.resume_count(), inj.stall_count());
}

TEST(PeerFaultInjector, SlowPeersDrawnOnceAtConstruction) {
  PeerFaultConfig cfg;
  cfg.slow_peer_fraction = 0.5;
  cfg.slow_factor = 4.0;
  PeerFaultInjector inj(cfg, 200, util::Rng(3));
  EXPECT_GT(inj.slow_peer_count(), 50u);
  EXPECT_LT(inj.slow_peer_count(), 150u);
  std::size_t slow = 0;
  for (PeerId p = 0; p < 200; ++p) {
    const double f = inj.latency_factor(p);
    EXPECT_TRUE(f == 1.0 || f == 4.0);
    slow += f > 1.0 ? 1u : 0u;
  }
  EXPECT_EQ(slow, inj.slow_peer_count());
}

// --------------------------------------------- DD-POLICE hardening contract

struct World {
  topology::Graph graph;
  std::unique_ptr<topology::BandwidthMap> bandwidth;
  std::unique_ptr<workload::ContentModel> content;
  std::unique_ptr<flow::FlowNetwork> net;
  std::unique_ptr<flow::FlowPort> port;
  std::unique_ptr<core::DdPolice> police;

  explicit World(std::uint64_t seed) {
    util::Rng topo_rng(seed);
    graph = topology::paper_topology(120, topo_rng);
    util::Rng rng(seed + 1);
    util::Rng bw_rng = rng.fork("bw");
    bandwidth =
        std::make_unique<topology::BandwidthMap>(graph.node_count(), bw_rng);
    workload::ContentConfig cc;
    cc.objects = 300;
    cc.mean_replicas = 10.0;
    content = std::make_unique<workload::ContentModel>(cc, graph.node_count());
    flow::FlowConfig fc;
    fc.bandwidth_limits = false;
    net = std::make_unique<flow::FlowNetwork>(graph, *bandwidth, *content, fc,
                                              rng.fork("flow"));
    port = std::make_unique<flow::FlowPort>(*net);
    police = std::make_unique<core::DdPolice>(*port, core::DdPoliceConfig{},
                                              rng.fork("ddp"));
    net->add_minute_hook([this](double m) { police->on_minute(m); });
  }
};

std::vector<core::Decision> run_attacked(bool attach_zero_plane) {
  World w(17);
  FaultPlane plane(FaultConfig{}, w.graph.node_count(), util::Rng(55));
  if (attach_zero_plane) w.police->set_fault_plane(&plane);
  w.net->set_kind(5, PeerKind::kBad);
  w.net->run_minutes(4.0);
  return w.police->decisions();
}

TEST(FaultPlane, ZeroProbabilityPlaneKeepsDecisionsBitIdentical) {
  const auto without = run_attacked(false);
  const auto with = run_attacked(true);
  ASSERT_EQ(without.size(), with.size());
  ASSERT_FALSE(without.empty());  // the attacker must actually be judged
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(without[i].minute, with[i].minute);  // exact double equality
    EXPECT_EQ(without[i].judge, with[i].judge);
    EXPECT_EQ(without[i].suspect, with[i].suspect);
    EXPECT_EQ(without[i].g, with[i].g);
    EXPECT_EQ(without[i].s, with[i].s);
    EXPECT_EQ(without[i].via_single, with[i].via_single);
    EXPECT_EQ(without[i].responders, with[i].responders);
  }
}

TEST(FaultPlane, InactivePlaneReportsZeroControlCounters) {
  World w(17);
  FaultPlane plane(FaultConfig{}, w.graph.node_count(), util::Rng(55));
  w.police->set_fault_plane(&plane);
  EXPECT_FALSE(plane.control_active());
  w.net->set_kind(5, PeerKind::kBad);
  w.net->run_minutes(3.0);
  const auto& c = w.police->control_stats();
  EXPECT_EQ(c.timeouts, 0u);
  EXPECT_EQ(c.retries, 0u);
  EXPECT_EQ(c.late_replies, 0u);
  EXPECT_EQ(c.corrupt_rejects, 0u);
}

TEST(FaultPlane, LossyChannelDrivesRetriesYetDetectionSurvives) {
  World w(17);
  FaultConfig fc;
  fc.channel.drop_probability = 0.4;
  fc.channel.corrupt_probability = 0.1;
  FaultPlane plane(fc, w.graph.node_count(), util::Rng(55));
  w.police->set_fault_plane(&plane);
  w.net->set_kind(5, PeerKind::kBad);
  w.net->run_minutes(5.0);
  const auto& c = w.police->control_stats();
  EXPECT_GT(c.retries, 0u);
  EXPECT_GT(c.timeouts, 0u);
  EXPECT_GT(c.backoff_seconds_total, 0.0);
  EXPECT_GT(plane.channel().counters().transfers, 0u);
  // Count-as-zero after exhausted retries inflates indicators, it does not
  // blind the judge: the attacker is still cut.
  bool cut = false;
  for (const auto& d : w.police->decisions()) cut |= d.suspect == 5;
  EXPECT_TRUE(cut);
}

TEST(FaultPlane, CorruptionIsDetectedByWireCodec) {
  World w(17);
  FaultConfig fc;
  fc.channel.corrupt_probability = 1.0;  // every reply arrives mangled
  FaultPlane plane(fc, w.graph.node_count(), util::Rng(55));
  w.police->set_fault_plane(&plane);
  w.net->set_kind(5, PeerKind::kBad);
  w.net->run_minutes(4.0);
  const auto& c = w.police->control_stats();
  // Some corruptions slip through (a bit flip in the GUID or timestamp is
  // invisible to validation) but truncations and id damage must be caught.
  EXPECT_GT(c.corrupt_rejects, 0u);
}

}  // namespace
}  // namespace ddp::fault
