// Flow-level engine tests: conservation and reach against exact coverage
// profiles (cross-validation with the BFS model), per-link monitors, ghost
// counters, capacity and bandwidth clamping, fair-share discipline, minute
// rotation and the churn driver.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "flow/churn_driver.hpp"
#include "flow/network.hpp"
#include "topology/generators.hpp"

namespace ddp::flow {
namespace {

struct World {
  topology::Graph graph;
  std::unique_ptr<topology::BandwidthMap> bandwidth;
  std::unique_ptr<workload::ContentModel> content;
  std::unique_ptr<FlowNetwork> net;

  World(topology::Graph g, FlowConfig cfg = {}, std::uint64_t seed = 11,
        double mean_replicas = 8.0)
      : graph(std::move(g)) {
    util::Rng rng(seed);
    util::Rng bw_rng = rng.fork("bw");
    bandwidth = std::make_unique<topology::BandwidthMap>(graph.node_count(),
                                                         bw_rng);
    workload::ContentConfig cc;
    cc.objects = 500;
    cc.mean_replicas = mean_replicas;
    content = std::make_unique<workload::ContentModel>(cc, graph.node_count());
    net = std::make_unique<FlowNetwork>(graph, *bandwidth, *content, cfg,
                                        rng.fork("flow"));
  }
};

FlowConfig quiet_config() {
  FlowConfig cfg;
  cfg.bandwidth_limits = false;  // isolate the mechanics under test
  return cfg;
}

TEST(FlowNetwork, IdleNetworkCarriesOnlyGoodIssuance) {
  util::Rng rng(1);
  World w(topology::paper_topology(100, rng), quiet_config());
  w.net->run_minutes(3.0);
  const auto& r = w.net->last_minute_report();
  EXPECT_GT(r.good_issued, 0.0);
  EXPECT_DOUBLE_EQ(r.attack_issued, 0.0);
  EXPECT_GT(r.traffic_messages, r.good_issued);  // flooding multiplies
  EXPECT_DOUBLE_EQ(r.dropped, 0.0);              // far below capacity
}

TEST(FlowNetwork, ReachMatchesExactCoverageProfile) {
  // Cross-validation: with no congestion the flow engine's per-query reach
  // must match the BFS coverage profile it was calibrated against.
  util::Rng rng(2);
  topology::Graph g = topology::paper_topology(200, rng);
  const auto exact = topology::average_coverage(g, 7, 200, rng);
  World w(std::move(g), quiet_config());
  w.net->run_minutes(3.0);
  const auto& r = w.net->last_minute_report();
  EXPECT_NEAR(r.reach_per_query, exact.total_reach(),
              exact.total_reach() * 0.12);
}

TEST(FlowNetwork, SuccessHighOnHealthyOverlay) {
  util::Rng rng(3);
  World w(topology::paper_topology(300, rng), quiet_config());
  w.net->run_minutes(3.0);
  EXPECT_GT(w.net->last_minute_report().success_rate, 0.8);
}

TEST(FlowNetwork, AttackRaisesTrafficAndDrops) {
  util::Rng rng(4);
  World base(topology::paper_topology(200, rng), quiet_config(), 11);
  base.net->run_minutes(3.0);
  const double base_traffic = base.net->last_minute_report().traffic_messages;

  util::Rng rng2(4);
  World atk(topology::paper_topology(200, rng2), quiet_config(), 11);
  for (PeerId a = 0; a < 5; ++a) atk.net->set_kind(a, PeerKind::kBad);
  atk.net->run_minutes(3.0);
  const auto& r = atk.net->last_minute_report();
  EXPECT_GT(r.traffic_messages, 2.0 * base_traffic);
  EXPECT_GT(r.attack_issued, 0.0);
  EXPECT_GT(r.dropped, 0.0);
  EXPECT_LT(r.success_rate,
            base.net->last_minute_report().success_rate);
}

TEST(FlowNetwork, PerLinkMonitorSeesAttackRate) {
  // Star: attacker at the hub sends Q_d per link.
  topology::Graph g(5);
  for (PeerId i = 1; i < 5; ++i) g.add_edge(0, i);
  FlowConfig cfg = quiet_config();
  World w(std::move(g), cfg);
  w.net->set_kind(0, PeerKind::kBad);
  w.net->run_minutes(2.0);
  // Q_d = 20,000/min per link (no bandwidth limits here).
  EXPECT_NEAR(w.net->sent_last_minute(0, 1), 20000.0, 1500.0);
  EXPECT_NEAR(w.net->sent_last_minute(0, 4), 20000.0, 1500.0);
}

TEST(FlowNetwork, GoodIssuerFloodsFullCopyPerLink) {
  topology::Graph g(4);
  for (PeerId i = 1; i < 4; ++i) g.add_edge(0, i);
  FlowConfig cfg = quiet_config();
  cfg.good_issue_per_minute = 60.0;  // 1/s, easy to see
  World w(std::move(g), cfg);
  // Only peer 0 issues.
  for (PeerId p = 1; p < 4; ++p) w.net->set_issue_scale(p, 0.0);
  w.net->run_minutes(2.0);
  // Flooding copies the full rate onto every link.
  EXPECT_NEAR(w.net->sent_last_minute(0, 1), 60.0, 3.0);
  EXPECT_NEAR(w.net->sent_last_minute(0, 3), 60.0, 3.0);
}

TEST(FlowNetwork, CapacityClampsForwarding) {
  // Line: 0 (attacker) -> 1 -> 2. Peer 1 can service only capacity/min, so
  // what it forwards to 2 is bounded by capacity regardless of input.
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  FlowConfig cfg = quiet_config();
  cfg.capacity_per_minute = 6000.0;
  World w(std::move(g), cfg);
  w.net->set_kind(0, PeerKind::kBad);  // sends 20,000/min into peer 1
  w.net->run_minutes(2.0);
  EXPECT_NEAR(w.net->sent_last_minute(0, 1), 20000.0, 1500.0);
  // Peer 1 (degree 2) forwards fresh * (deg-1)/deg of <= 6000 processed.
  EXPECT_LT(w.net->sent_last_minute(1, 2), 6000.0);
  EXPECT_GT(w.net->last_minute_report().dropped, 10000.0);
}

TEST(FlowNetwork, BandwidthLimitsClampSlowLinks) {
  topology::Graph g(2);
  g.add_edge(0, 1);
  FlowConfig cfg;  // bandwidth limits ON
  // Find a seed where peer 0 is a modem (22% chance; scan a few seeds).
  for (std::uint64_t seed = 1; seed < 60; ++seed) {
    util::Rng rng(seed);
    topology::BandwidthMap bw(2, rng);
    if (bw.peer_class(0) == topology::BandwidthClass::kModem) {
      workload::ContentConfig cc;
      workload::ContentModel content(cc, 2);
      topology::Graph g2(2);
      g2.add_edge(0, 1);
      FlowNetwork net(g2, bw, content, cfg, util::Rng(7));
      net.set_kind(0, PeerKind::kBad);
      net.run_minutes(2.0);
      // Modem upstream 56 Kbps -> ~7000 queries/min ceiling.
      EXPECT_LT(net.sent_last_minute(0, 1), 7100.0);
      EXPECT_GT(net.sent_last_minute(0, 1), 5000.0);
      return;
    }
  }
  FAIL() << "no modem seed found";
}

TEST(FlowNetwork, GhostCountersSurviveDisconnectWithinMinute) {
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  World w(std::move(g), quiet_config());
  w.net->set_kind(0, PeerKind::kBad);
  w.net->run_minutes(2.0);
  const double before = w.net->sent_last_minute(0, 1);
  ASSERT_GT(before, 1000.0);
  w.net->disconnect(0, 1);
  // The monitors still answer for the completed minute...
  EXPECT_DOUBLE_EQ(w.net->sent_last_minute(0, 1), before);
  // ...but the ghost expires at the next rotation.
  w.net->run_minutes(1.0);
  EXPECT_DOUBLE_EQ(w.net->sent_last_minute(0, 1), 0.0);
}

TEST(FlowNetwork, DisconnectSeversFlow) {
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  World w(std::move(g), quiet_config());
  w.net->set_kind(0, PeerKind::kBad);
  w.net->run_minutes(1.0);
  w.net->disconnect(0, 1);
  w.net->run_minutes(2.0);
  EXPECT_DOUBLE_EQ(w.net->sent_last_minute(0, 1), 0.0);
  EXPECT_LT(w.net->sent_last_minute(1, 2), 100.0);
  EXPECT_FALSE(w.net->graph().has_edge(0, 1));
}

TEST(FlowNetwork, FairShareProtectsLightLinks) {
  // Peer 1 has two feeders: attacker 0 and a good issuer 2; sink 3.
  // Under pooled FIFO both suffer the same loss ratio; under fair share the
  // light (good) link is served fully.
  auto build = [](ServiceDiscipline d) {
    topology::Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 1);
    g.add_edge(1, 3);
    FlowConfig cfg;
    cfg.bandwidth_limits = false;
    cfg.capacity_per_minute = 5000.0;
    cfg.discipline = d;
    cfg.good_issue_per_minute = 300.0;
    auto w = std::make_unique<World>(std::move(g), cfg);
    w->net->set_kind(0, PeerKind::kBad);
    w->net->set_issue_scale(1, 0.0);
    w->net->set_issue_scale(3, 0.0);
    w->net->run_minutes(3.0);
    return w;
  };
  const auto pooled = build(ServiceDiscipline::kPooledFifo);
  const auto fair = build(ServiceDiscipline::kFairShare);
  // Good flood share surviving through peer 1: measure good reach.
  EXPECT_GT(fair->net->last_minute_report().reach_per_query,
            pooled->net->last_minute_report().reach_per_query * 1.5);
}

TEST(FlowNetwork, MinuteHooksFireOncePerMinute) {
  util::Rng rng(5);
  World w(topology::paper_topology(50, rng), quiet_config());
  std::vector<double> minutes;
  w.net->add_minute_hook([&](double m) { minutes.push_back(m); });
  w.net->run_minutes(3.0);
  ASSERT_EQ(minutes.size(), 3u);
  EXPECT_DOUBLE_EQ(minutes[0], 1.0);
  EXPECT_DOUBLE_EQ(minutes[2], 3.0);
}

TEST(FlowNetwork, OverheadCountedIntoReport) {
  util::Rng rng(6);
  World w(topology::paper_topology(50, rng), quiet_config());
  w.net->add_minute_hook([&](double) { w.net->add_overhead_messages(123.0); });
  w.net->run_minutes(2.0);
  // Overhead added during minute 1's hook lands in minute 2's report.
  EXPECT_DOUBLE_EQ(w.net->last_minute_report().overhead_messages, 123.0);
}

TEST(FlowNetwork, HistoryAccumulates) {
  util::Rng rng(7);
  World w(topology::paper_topology(50, rng), quiet_config());
  w.net->run_minutes(5.0);
  ASSERT_EQ(w.net->minute_history().size(), 5u);
  EXPECT_DOUBLE_EQ(w.net->minute_history()[4].minute, 5.0);
}

TEST(FlowNetwork, RecalibrateHandlesChangedTopology) {
  util::Rng rng(8);
  World w(topology::paper_topology(80, rng), quiet_config());
  w.net->run_minutes(1.0);
  // Remove a chunk of edges and recalibrate; reach must shrink with it.
  const double reach_before = w.net->last_minute_report().reach_per_query;
  for (PeerId p = 0; p < 40; ++p) w.net->mutable_graph().set_active(p, false);
  w.net->recalibrate();
  w.net->run_minutes(2.0);
  EXPECT_LT(w.net->last_minute_report().reach_per_query, reach_before);
}

TEST(FlowNetwork, ResponseTimeGrowsUnderLoad) {
  util::Rng rng(9);
  World idle(topology::paper_topology(150, rng), quiet_config(), 21);
  idle.net->run_minutes(3.0);
  util::Rng rng2(9);
  World busy(topology::paper_topology(150, rng2), quiet_config(), 21);
  for (PeerId a = 0; a < 10; ++a) busy.net->set_kind(a, PeerKind::kBad);
  busy.net->run_minutes(3.0);
  EXPECT_GT(busy.net->last_minute_report().response_time,
            idle.net->last_minute_report().response_time);
}

// ------------------------------------------------------------ churn driver

TEST(ChurnDriver, TurnsPeersOffAndOn) {
  util::Rng rng(10);
  World w(topology::paper_topology(200, rng), quiet_config());
  workload::ChurnConfig cc;
  cc.mean_lifetime = minutes(3.0);
  cc.lifetime_variance = 1.5 * kMinute * kMinute;
  cc.mean_offline = minutes(2.0);
  workload::ChurnModel model(cc);
  ChurnDriver churn(*w.net, model, util::Rng(77));
  std::size_t joins = 0, leaves = 0;
  churn.on_join = [&](PeerId) { ++joins; };
  churn.on_leave = [&](PeerId) { ++leaves; };
  w.net->add_minute_hook([&](double m) { churn.on_minute(m); });
  w.net->run_minutes(10.0);
  EXPECT_GT(leaves, 50u);
  EXPECT_GT(joins, 10u);
  EXPECT_EQ(churn.leaves(), leaves);
  EXPECT_EQ(churn.joins(), joins);
  // Population remains bounded and the overlay survives.
  EXPECT_GT(w.net->graph().active_count(), 50u);
  EXPECT_GT(w.net->last_minute_report().success_rate, 0.2);
}

TEST(ChurnDriver, DisabledChurnDoesNothing) {
  util::Rng rng(11);
  World w(topology::paper_topology(100, rng), quiet_config());
  workload::ChurnConfig cc;
  cc.enabled = false;
  workload::ChurnModel model(cc);
  ChurnDriver churn(*w.net, model, util::Rng(1));
  w.net->add_minute_hook([&](double m) { churn.on_minute(m); });
  w.net->run_minutes(5.0);
  EXPECT_EQ(churn.leaves(), 0u);
  EXPECT_EQ(w.net->graph().active_count(), 100u);
}

TEST(ChurnDriver, RejoiningPeerIsWiredIn) {
  util::Rng rng(12);
  World w(topology::paper_topology(100, rng), quiet_config());
  workload::ChurnConfig cc;
  cc.mean_lifetime = minutes(1.0);
  cc.lifetime_variance = 0.25 * kMinute * kMinute;
  cc.mean_offline = minutes(1.0);
  workload::ChurnModel model(cc);
  ChurnDriver churn(*w.net, model, util::Rng(5));
  w.net->add_minute_hook([&](double m) { churn.on_minute(m); });
  w.net->run_minutes(8.0);
  ASSERT_GT(churn.joins(), 0u);
  // Every active peer that rejoined has edges again.
  std::size_t isolated_active = 0;
  for (PeerId p = 0; p < w.net->graph().node_count(); ++p) {
    if (w.net->graph().is_active(p) && w.net->graph().degree(p) == 0) {
      ++isolated_active;
    }
  }
  EXPECT_LT(isolated_active, 5u);
}

// ---------------------------------------------- drop classes & admission

TEST(FlowNetwork, PerClassDropAccountingSumsToTotal) {
  util::Rng rng(41);
  World w(topology::paper_topology(200, rng), quiet_config(), 11);
  for (PeerId a = 0; a < 5; ++a) w.net->set_kind(a, PeerKind::kBad);
  w.net->run_minutes(3.0);
  const auto& r = w.net->last_minute_report();
  ASSERT_GT(r.dropped, 0.0);
  EXPECT_GT(r.dropped_attack, 0.0);
  EXPECT_GE(r.dropped_good, 0.0);
  // The per-class split is pure side accounting of the same drops.
  EXPECT_NEAR(r.dropped_good + r.dropped_attack, r.dropped,
              1e-6 * r.dropped + 1e-9);
  // Under a flood, the overload is overwhelmingly attack volume.
  EXPECT_GT(r.dropped_attack, r.dropped_good);
}

TEST(FlowNetwork, QuietNetworkDropsNothingInEitherClass) {
  util::Rng rng(42);
  World w(topology::paper_topology(100, rng), quiet_config());
  w.net->run_minutes(2.0);
  const auto& r = w.net->last_minute_report();
  EXPECT_DOUBLE_EQ(r.dropped_good, 0.0);
  EXPECT_DOUBLE_EQ(r.dropped_attack, 0.0);
}

TEST(FlowNetwork, PriorityAdmissionShedsAttackTrafficFirst) {
  auto report_for = [](AdmissionPolicy admission) {
    util::Rng rng(43);
    FlowConfig cfg;
    cfg.bandwidth_limits = false;
    cfg.admission = admission;
    World w(topology::paper_topology(200, rng), cfg, 11);
    for (PeerId a = 0; a < 5; ++a) w.net->set_kind(a, PeerKind::kBad);
    w.net->run_minutes(3.0);
    return w.net->last_minute_report();
  };
  const auto blind = report_for(AdmissionPolicy::kClassBlind);
  const auto prio = report_for(AdmissionPolicy::kPriority);
  ASSERT_GT(blind.dropped_good, 0.0);  // blind tail drop hits good traffic
  // Priority shedding spends the scarce budget on the good class.
  EXPECT_LT(prio.dropped_good, blind.dropped_good);
  EXPECT_GT(prio.dropped_attack, 0.0);
  EXPECT_GE(prio.success_rate + 1e-9, blind.success_rate);
}

}  // namespace
}  // namespace ddp::flow
