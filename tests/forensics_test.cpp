// Causal tracing and forensics tests: flood-tree reconstruction from the
// packet engine's query/parent payloads, deterministic query ids, the
// ForensicsAccumulator's latency/damage arithmetic (live sink vs offline
// JSONL fold), and the SeriesStore ring (wrap, bands, snapshot identity).

#include <gtest/gtest.h>

#include <sstream>

#include "experiments/runtime.hpp"
#include "experiments/scenario.hpp"
#include "obs/forensics.hpp"
#include "obs/series.hpp"
#include "obs/trace.hpp"
#include "obs/trace_read.hpp"
#include "p2p/network.hpp"
#include "snapshot/snapshot.hpp"
#include "topology/generators.hpp"

namespace ddp {
namespace {

topology::Graph line(std::size_t n) {
  topology::Graph g(n);
  for (PeerId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

/// One traced packet-engine flood; returns the JSONL text it produced.
struct TracedFlood {
  topology::Graph graph;
  workload::ContentConfig content_cfg;
  std::unique_ptr<workload::ContentModel> content;
  sim::Engine engine;
  p2p::P2pConfig cfg;
  std::ostringstream jsonl;
  obs::JsonlSink sink{jsonl};
  std::unique_ptr<p2p::PacketNetwork> net;

  TracedFlood(topology::Graph g, double replicas, std::uint64_t seed)
      : graph(std::move(g)) {
    content_cfg.objects = 4;
    content_cfg.mean_replicas = replicas;
    content = std::make_unique<workload::ContentModel>(content_cfg,
                                                       graph.node_count());
    net = std::make_unique<p2p::PacketNetwork>(graph, *content, engine, cfg,
                                               util::Rng(seed));
    net->set_trace_sink(&sink);
  }

  std::vector<obs::TraceRecord> records() {
    sink.flush();
    std::istringstream in(jsonl.str());
    return obs::read_trace_records(in);
  }
};

TEST(FloodTree, LineTopologyReconstructsTheChain) {
  TracedFlood f(line(5), /*replicas=*/0.0, 7);
  const QueryId id = f.net->issue_query(0, 1);
  f.engine.run_until(30.0);

  const auto tree = obs::build_flood_tree(f.records(), id);
  ASSERT_TRUE(tree.found);
  EXPECT_EQ(tree.origin, 0u);
  EXPECT_FALSE(tree.attack);
  EXPECT_EQ(tree.object, 1.0);
  // Every peer appears exactly once, parented to its upstream neighbour.
  ASSERT_EQ(tree.nodes.size(), 5u);
  EXPECT_EQ(tree.nodes[0].peer, 0u);
  EXPECT_EQ(tree.nodes[0].parent, kInvalidPeer);
  for (std::size_t i = 1; i < 5; ++i) {
    const auto& n = tree.nodes[i];
    EXPECT_EQ(n.peer, static_cast<PeerId>(i));
    EXPECT_EQ(n.parent, static_cast<PeerId>(i - 1));
    EXPECT_EQ(n.hops, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(tree.depth, 4u);
  EXPECT_EQ(tree.forwards, 4u);   // one transmission per link
  EXPECT_EQ(tree.duplicates, 0u);
  EXPECT_EQ(tree.drops, 0u);
  EXPECT_EQ(tree.hits, 0u);
  // The far end terminated the flood without fanning out.
  EXPECT_TRUE(tree.nodes[4].expired);
  EXPECT_TRUE(tree.nodes[4].children.empty());
  // Children mirror parents.
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    ASSERT_EQ(tree.nodes[i].children.size(), 1u);
    EXPECT_EQ(tree.nodes[i].children[0], i + 1);
  }
}

TEST(FloodTree, CycleTalliesDuplicatesAndStaysATree) {
  topology::Graph g(4);
  for (PeerId i = 0; i < 4; ++i) g.add_edge(i, (i + 1) % 4);
  TracedFlood f(std::move(g), 0.0, 3);
  const QueryId id = f.net->issue_query(0, 2);
  f.engine.run_until(30.0);

  const auto tree = obs::build_flood_tree(f.records(), id);
  ASSERT_TRUE(tree.found);
  // The two wavefronts meet: at least one duplicate, but the tree keeps
  // exactly one parent per node (first arrival wins, like the seen-table).
  EXPECT_GE(tree.duplicates, 1u);
  EXPECT_EQ(tree.nodes.size(), 4u);
  std::size_t roots = 0, reachable = 0;
  for (const auto& n : tree.nodes) {
    if (n.parent == kInvalidPeer) ++roots;
    reachable += n.children.size();
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(reachable, tree.nodes.size() - 1);  // spanning: every non-root
}

TEST(FloodTree, HitsAndDeliveriesAreRecorded) {
  // Full replication: the direct neighbour answers.
  TracedFlood f(line(3), /*replicas=*/4.0, 11);
  const QueryId id = f.net->issue_query(0, 2);
  f.engine.run_until(30.0);

  const auto tree = obs::build_flood_tree(f.records(), id);
  ASSERT_TRUE(tree.found);
  EXPECT_GE(tree.hits, 1u);
  EXPECT_GE(tree.delivered, 1u);
  EXPECT_GT(tree.first_delivery_latency, 0.0);
  bool some_hit = false;
  for (const auto& n : tree.nodes) {
    if (!n.hit) continue;
    some_hit = true;
    EXPECT_NE(n.peer, tree.origin);
    EXPECT_GE(n.hops, 1u);
  }
  EXPECT_TRUE(some_hit);
}

TEST(FloodTree, SameSeedRunsSerializeToIdenticalJsonl) {
  util::Rng topo_rng_a(5), topo_rng_b(5);
  TracedFlood a(topology::paper_topology(40, topo_rng_a), 2.0, 9);
  TracedFlood b(topology::paper_topology(40, topo_rng_b), 2.0, 9);
  for (PeerId p = 0; p < 6; ++p) {
    a.net->issue_random_query(p);
    b.net->issue_random_query(p);
  }
  a.engine.run_until(60.0);
  b.engine.run_until(60.0);
  a.sink.flush();
  b.sink.flush();
  ASSERT_FALSE(a.jsonl.str().empty());
  EXPECT_EQ(a.jsonl.str(), b.jsonl.str());
}

TEST(FloodTree, QueryIdsAreSequentialRegardlessOfSeed) {
  for (const std::uint64_t seed : {1ull, 42ull, 20070710ull}) {
    TracedFlood f(line(4), 0.0, seed);
    for (int i = 1; i <= 3; ++i) {
      EXPECT_EQ(f.net->issue_query(0, 1), static_cast<QueryId>(i));
    }
    f.engine.run_until(30.0);
    // The issued events carry the same ids.
    int next = 1;
    for (const auto& r : f.records()) {
      if (r.known != obs::EventType::kQueryIssued) continue;
      EXPECT_EQ(r.field("query").value_or(-1.0), static_cast<double>(next++));
    }
    EXPECT_EQ(next, 4);
  }
}

// ---------------------------------------------------------------------------
// ForensicsAccumulator

obs::TraceEvent ev(obs::EventType type, double t, PeerId a,
                   std::initializer_list<obs::TraceEvent::Field> fields) {
  obs::TraceEvent e;
  e.type = type;
  e.t = t;
  e.a = a;
  for (const auto& f : fields) e.add_field(f.key, f.value);
  return e;
}

TEST(Forensics, HandComputedMicroScenario) {
  using obs::EventType;
  obs::ForensicsAccumulator acc;
  // Campaign at minute 2; agent 7 sources at 20k/min; flagged one minute
  // later, cut two minutes later; peer 9 is an honest false positive.
  acc.on_event(ev(EventType::kAttackStarted, 120.0, kInvalidPeer, {{"agents", 1.0}}));
  acc.on_event(ev(EventType::kAgentActivated, 120.0, 7, {{"rate", 20000.0}}));
  acc.on_event(ev(EventType::kAgentMinute, 180.0, 7,
                  {{"out", 1000.0}, {"drop_frac", 0.25}}));
  acc.on_event(ev(EventType::kSuspectFlagged, 180.0, 7, {}));
  acc.on_event(ev(EventType::kSuspectFlagged, 185.0, 9, {}));
  acc.on_event(ev(EventType::kAgentMinute, 240.0, 7,
                  {{"out", 2000.0}, {"drop_frac", 0.5}}));
  acc.on_event(ev(EventType::kSuspectCut, 240.0, 7, {}));
  acc.on_event(ev(EventType::kSuspectCut, 245.0, 9, {}));
  acc.on_event(ev(EventType::kPeerQuarantined, 240.0, 7, {}));
  // Post-cut minute: must NOT accrue into pre-cut damage.
  acc.on_event(ev(EventType::kAgentMinute, 300.0, 7,
                  {{"out", 500.0}, {"drop_frac", 0.0}}));

  EXPECT_EQ(acc.attack_start_t(), 120.0);
  ASSERT_EQ(acc.agents().size(), 1u);
  const auto& ag = acc.agents().at(7);
  EXPECT_EQ(ag.rate, 20000.0);
  EXPECT_EQ(ag.activated_t, 120.0);
  EXPECT_EQ(ag.first_flag_t, 180.0);
  EXPECT_EQ(ag.first_cut_t, 240.0);
  EXPECT_EQ(ag.quarantined_t, 240.0);
  // Minute totals up to and including the cut minute accrue; the cut-minute
  // traffic was in flight before the link came down.
  EXPECT_DOUBLE_EQ(ag.injected_before_cut, 3000.0);
  EXPECT_DOUBLE_EQ(ag.delivered_before_cut, 1000.0 * 0.75 + 2000.0 * 0.5);
  ASSERT_EQ(acc.honest().size(), 1u);
  const auto& h = acc.honest().at(9);
  EXPECT_EQ(h.first_flag_t, 185.0);
  EXPECT_EQ(h.first_cut_t, 245.0);

  // Exported latencies are minutes relative to activation.
  const std::string csv = acc.to_csv();
  EXPECT_NE(csv.find("\n7,20000,2,3,"), std::string::npos);  // agent,rate,act,flag
  EXPECT_NE(csv.find(",1,"), std::string::npos);             // flag latency 1 min
  const std::string json = acc.to_json();
  EXPECT_NE(json.find("\"mean_flag_latency_min\":1"), std::string::npos);
  EXPECT_NE(json.find("\"mean_cut_latency_min\":2"), std::string::npos);
  EXPECT_NE(json.find("\"honest_cut\":1"), std::string::npos);
}

experiments::ScenarioConfig tiny_config(std::uint64_t seed = 20070710) {
  auto cfg = experiments::paper_scenario(120, 10, defense::Kind::kDdPolice, seed);
  cfg.total_minutes = 8.0;
  cfg.attack.start_minute = 2.0;
  cfg.warmup_minutes = 3.0;
  return cfg;
}

TEST(Forensics, OfflineFoldMatchesLiveSink) {
  auto cfg = tiny_config();
  cfg.obs.forensics = true;
  std::ostringstream trace;
  obs::JsonlSink sink(trace);
  cfg.obs.trace_sink = &sink;
  const auto result = experiments::run_scenario(cfg);
  ASSERT_NE(result.forensics, nullptr);
  ASSERT_FALSE(result.forensics->agents().empty());

  std::istringstream in(trace.str());
  obs::ForensicsAccumulator offline;
  for (const auto& r : obs::read_trace_records(in)) offline.add(r);
  EXPECT_EQ(offline.to_csv(), result.forensics->to_csv());
  EXPECT_EQ(offline.to_json(), result.forensics->to_json());
}

TEST(Forensics, SameSeedRunsProduceByteIdenticalReports) {
  auto cfg = tiny_config();
  cfg.obs.forensics = true;
  const auto a = experiments::run_scenario(cfg);
  const auto b = experiments::run_scenario(cfg);
  ASSERT_NE(a.forensics, nullptr);
  ASSERT_NE(b.forensics, nullptr);
  EXPECT_EQ(a.forensics->to_csv(), b.forensics->to_csv());
  EXPECT_EQ(a.forensics->to_json(), b.forensics->to_json());
  // Every agent's storyline is complete on this scenario: activated at the
  // campaign minute and cut with a measurable latency.
  EXPECT_EQ(a.forensics->agents().size(), 10u);
  for (const auto& [id, ag] : a.forensics->agents()) {
    EXPECT_GE(ag.activated_t, 0.0);
    EXPECT_GE(ag.first_cut_t, ag.activated_t) << "agent " << id;
    EXPECT_GT(ag.injected_before_cut, 0.0) << "agent " << id;
  }
}

TEST(Forensics, SurvivesCheckpointResume) {
  auto cfg = tiny_config();
  cfg.obs.forensics = true;

  experiments::ScenarioRuntime straight(cfg);
  straight.run_all();
  const std::string want = straight.result().forensics->to_csv();

  experiments::ScenarioRuntime first(cfg);
  first.run_to_minute(4.0);  // mid-campaign: agents active, cuts underway
  const auto image = first.save();

  experiments::ScenarioRuntime resumed(cfg);
  resumed.load_bytes(image);
  resumed.run_all();
  EXPECT_EQ(resumed.result().forensics->to_csv(), want);
  EXPECT_EQ(resumed.result().forensics->to_json(),
            straight.result().forensics->to_json());
}

// ---------------------------------------------------------------------------
// SeriesStore

TEST(SeriesStore, RingWrapKeepsTheLastWindow) {
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto s01 = g.edge_slot(0, 1);
  obs::SeriesStore store(g, 3);
  EXPECT_EQ(store.depth(), 0u);

  for (int m = 1; m <= 5; ++m) {
    store.begin_minute(static_cast<double>(m));
    store.set_peer(0, 10.0 * m);
    store.set_edge(s01, 100.0 * m);
  }
  EXPECT_EQ(store.minutes_recorded(), 5u);
  EXPECT_EQ(store.depth(), 3u);  // only the last window() columns remain
  EXPECT_EQ(store.minute_label(0), 5.0);
  EXPECT_EQ(store.minute_label(2), 3.0);
  EXPECT_EQ(store.peer_rate(0, 0), 50.0);
  EXPECT_EQ(store.peer_rate(0, 2), 30.0);
  EXPECT_EQ(store.peer_rate(0, 3), 0.0);  // beyond the retained window
  EXPECT_EQ(store.edge_rate(s01, 1), 400.0);
  // Peer 1 was never set: a silent minute is a real zero observation.
  const auto band = store.peer_band(0);
  EXPECT_EQ(band.samples, 3u);
  EXPECT_EQ(band.min, 30.0);
  EXPECT_EQ(band.max, 50.0);
  EXPECT_DOUBLE_EQ(band.mean, (30.0 + 40.0 + 50.0) / 3.0);
  EXPECT_EQ(store.peer_band(1).max, 0.0);
}

TEST(SeriesStore, SnapshotRoundTripIsByteIdentical) {
  topology::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  obs::SeriesStore store(g, 4);
  for (int m = 1; m <= 6; ++m) {
    store.begin_minute(static_cast<double>(m));
    for (PeerId p = 0; p < 4; ++p) store.set_peer(p, p + 0.5 * m);
    store.set_edge(g.edge_slot(1, 2), 7.0 * m);
  }

  constexpr std::uint32_t kSec = snapshot::section_id("TEST");
  snapshot::Writer w1;
  w1.begin_section(kSec);
  store.save(w1);
  w1.end_section();
  const auto bytes1 = w1.finish(0);

  obs::SeriesStore loaded(g, 4);
  snapshot::Reader r = snapshot::Reader::from_bytes(bytes1);
  r.begin_section(kSec);
  loaded.load(r);
  r.end_section();
  EXPECT_EQ(loaded.minutes_recorded(), store.minutes_recorded());
  EXPECT_EQ(loaded.peer_rate(2, 1), store.peer_rate(2, 1));
  EXPECT_EQ(loaded.edge_rate(g.edge_slot(1, 2), 3),
            store.edge_rate(g.edge_slot(1, 2), 3));

  snapshot::Writer w2;
  w2.begin_section(kSec);
  loaded.save(w2);
  w2.end_section();
  EXPECT_EQ(w2.finish(0), bytes1);  // save -> load -> save: same bytes
}

TEST(SeriesStore, ScenarioFeedAndRuntimeSnapshotIdentity) {
  auto cfg = tiny_config();
  cfg.obs.series_window_minutes = 4;
  cfg.obs.forensics = true;

  experiments::ScenarioRuntime rt(cfg);
  rt.run_all();
  const auto result = rt.result();
  ASSERT_NE(result.series, nullptr);
  EXPECT_EQ(result.series->window(), 4u);
  EXPECT_EQ(result.series->depth(), 4u);
  EXPECT_EQ(result.series->minutes_recorded(), 8u);
  // Attack agents pushed real volume in the retained window.
  double peak = 0.0;
  for (PeerId p = 0; p < 120; ++p) {
    peak = std::max(peak, result.series->peer_band(p).max);
  }
  EXPECT_GT(peak, 0.0);

  // The full runtime image (incl. SERS + FRNS sections) round-trips to the
  // same bytes through a fresh runtime.
  const auto image = rt.save();
  experiments::ScenarioRuntime reloaded(cfg);
  reloaded.load_bytes(image);
  EXPECT_EQ(reloaded.save(), image);
}

TEST(SeriesStore, PresenceMismatchIsRejectedOnLoad) {
  auto cfg = tiny_config();
  cfg.obs.series_window_minutes = 4;
  experiments::ScenarioRuntime with_series(cfg);
  with_series.run_to_minute(2.0);
  const auto image = with_series.save();

  auto plain = tiny_config();
  experiments::ScenarioRuntime without(plain);
  EXPECT_THROW(without.load_bytes(image), snapshot::SnapshotError);
}

}  // namespace
}  // namespace ddp
