// End-to-end integration tests: whole scaled-down experiments asserting the
// paper-shape properties every figure depends on. These run the same code
// paths as the bench binaries, at sizes that keep ctest fast.

#include <gtest/gtest.h>

#include "experiments/extensions.hpp"
#include "experiments/figures.hpp"
#include "experiments/scenario.hpp"
#include "metrics/damage.hpp"

namespace ddp::experiments {
namespace {

Scale tiny_scale() {
  Scale s;
  s.peers = 200;
  s.total_minutes = 14.0;
  s.attack_start = 3.0;
  s.warmup_minutes = 6.0;
  s.trials = 1;
  s.agent_counts = {0, 5, 20};
  return s;
}

TEST(Scenario, BaselineOverlayIsHealthy) {
  ScenarioConfig cfg = paper_scenario(200, 0, defense::Kind::kNone, 1);
  cfg.total_minutes = 10.0;
  const auto r = run_baseline(cfg);
  EXPECT_GT(r.summary.avg_success_rate, 0.7);
  EXPECT_GT(r.summary.avg_traffic_per_minute, 0.0);
  EXPECT_GT(r.final_active_peers, 100.0);
  EXPECT_TRUE(r.decisions.empty());
  EXPECT_EQ(r.errors.false_judgment, 0u);
}

TEST(Scenario, AttackDegradesService) {
  ScenarioConfig base = paper_scenario(200, 0, defense::Kind::kNone, 2);
  base.total_minutes = 12.0;
  base.attack.start_minute = 3.0;
  const auto healthy = run_baseline(base);
  ScenarioConfig atk = paper_scenario(200, 15, defense::Kind::kNone, 2);
  atk.total_minutes = 12.0;
  atk.attack.start_minute = 3.0;
  atk.warmup_minutes = 4.0;
  const auto attacked = run_scenario(atk);
  EXPECT_LT(attacked.summary.avg_success_rate,
            healthy.summary.avg_success_rate - 0.1);
  EXPECT_GT(attacked.summary.avg_traffic_per_minute,
            healthy.summary.avg_traffic_per_minute * 2.0);
  EXPECT_GT(attacked.summary.avg_response_time,
            healthy.summary.avg_response_time);
}

TEST(Scenario, DdPoliceRestoresService) {
  const std::uint64_t seed = 3;
  ScenarioConfig base = paper_scenario(250, 0, defense::Kind::kNone, seed);
  base.total_minutes = 16.0;
  const auto healthy = run_baseline(base);

  ScenarioConfig none = paper_scenario(250, 15, defense::Kind::kNone, seed);
  none.total_minutes = 16.0;
  none.attack.start_minute = 3.0;
  ScenarioConfig ddp = none;
  ddp.defense = defense::Kind::kDdPolice;

  const auto r_none = run_scenario(none);
  const auto r_ddp = run_scenario(ddp);

  const auto dmg_none = metrics::analyze_damage(
      r_none.history, healthy.summary.avg_success_rate, 3.0);
  const auto dmg_ddp = metrics::analyze_damage(
      r_ddp.history, healthy.summary.avg_success_rate, 3.0);

  // DD-POLICE ends much closer to healthy than the undefended run.
  EXPECT_LT(dmg_ddp.stabilized_damage, dmg_none.stabilized_damage * 0.6);
  // And it identified most agents.
  EXPECT_LT(r_ddp.errors.false_positive, 15u / 3);
  EXPECT_GT(r_ddp.errors.bad_cut_events, 0u);
}

TEST(Scenario, DdPoliceOverheadIsModest) {
  ScenarioConfig cfg = paper_scenario(200, 0, defense::Kind::kDdPolice, 4);
  cfg.total_minutes = 10.0;
  const auto with = run_scenario(cfg);
  ScenarioConfig cfg2 = paper_scenario(200, 0, defense::Kind::kNone, 4);
  cfg2.total_minutes = 10.0;
  const auto without = run_scenario(cfg2);
  // "slightly higher average traffic cost" (Sec. 3.7.2) — the protocol
  // overhead exists but is small relative to search traffic.
  EXPECT_GT(with.summary.avg_overhead_per_minute, 0.0);
  EXPECT_LT(with.summary.avg_overhead_per_minute,
            without.summary.avg_traffic_per_minute * 0.25);
}

TEST(Figures, AgentSweepPaperShape) {
  const auto rows = run_agent_sweep(tiny_scale(), 5);
  ASSERT_EQ(rows.size(), 3u);
  // Traffic under attack grows with agent count (Fig. 9's no-defense curve)
  EXPECT_GT(rows[2].traffic_none, rows[0].traffic_none * 1.5);
  // Success under attack decays with agent count (Fig. 11).
  EXPECT_LT(rows[2].success_none, rows[0].success_none);
  // DD-POLICE sits between no-defense and no-attack at high agent counts.
  EXPECT_GT(rows[2].success_ddp, rows[2].success_none);
  // Tables render one line per row plus headers.
  EXPECT_EQ(fig9_traffic_table(rows).rows(), 3u);
  EXPECT_EQ(fig10_response_table(rows).rows(), 3u);
  EXPECT_EQ(fig11_success_table(rows).rows(), 3u);
}

TEST(Figures, DamageTimelinesShape) {
  Scale s = tiny_scale();
  s.total_minutes = 12.0;
  const auto tl = run_damage_timelines(s, {3.0, 7.0}, 15, 6);
  ASSERT_EQ(tl.series.size(), 3u);  // no-defense + two CTs
  ASSERT_FALSE(tl.minutes.empty());
  const auto& none = tl.series.at("no DD-POLICE");
  const auto& ct3 = tl.series.at("DD-POLICE-3");
  ASSERT_EQ(none.size(), tl.minutes.size());
  // Attack bites after the start minute in the undefended series.
  double peak_none = 0.0, late_ct3 = 0.0, late_none = 0.0;
  for (std::size_t i = 0; i < tl.minutes.size(); ++i) {
    peak_none = std::max(peak_none, none[i]);
    if (tl.minutes[i] >= s.total_minutes - 3.0) {
      late_ct3 = std::max(late_ct3, ct3[i]);
      late_none = std::max(late_none, none[i]);
    }
  }
  EXPECT_GT(peak_none, 15.0);
  // DD-POLICE's late damage is below the undefended late damage.
  EXPECT_LT(late_ct3, late_none);
  EXPECT_EQ(fig12_damage_table(tl).rows(), tl.minutes.size());
}

TEST(Figures, CtSweepErrorTrends) {
  Scale s = tiny_scale();
  const auto rows = run_ct_sweep(s, {2.0, 30.0}, 15, 7);
  ASSERT_EQ(rows.size(), 2u);
  // Fig. 13: a laxer threshold wrongly cuts fewer good peers...
  EXPECT_LE(rows[1].false_negative, rows[0].false_negative);
  // ...and the tables render.
  EXPECT_EQ(fig13_errors_table(rows).rows(), 2u);
  EXPECT_EQ(fig14_recovery_table(rows).rows(), 2u);
}

TEST(Figures, ExchangeFrequencyStudyRuns) {
  Scale s = tiny_scale();
  s.total_minutes = 10.0;
  const auto rows = run_exchange_frequency_study(s, {1.0, 5.0}, true, 10, 8);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].policy, "periodic s=1");
  EXPECT_EQ(rows[2].policy, "event-driven");
  // More frequent exchange costs more messages (Sec. 3.7.1's tradeoff).
  EXPECT_GT(rows[0].exchange_msgs_per_minute,
            rows[1].exchange_msgs_per_minute);
  EXPECT_EQ(exchange_frequency_table(rows).rows(), 3u);
}

TEST(Figures, CheatAblationCoversAllCases) {
  Scale s = tiny_scale();
  s.total_minutes = 10.0;
  const auto rows = run_cheat_ablation(s, 10, 9);
  ASSERT_EQ(rows.size(), 6u);
  // Sec. 3.4's conclusion: cheating does not save the attackers — they are
  // identified under every reporting strategy.
  for (const auto& r : rows) {
    EXPECT_GT(r.bad_identified_pct, 50.0) << r.report << "/" << r.list;
  }
  EXPECT_EQ(cheat_table(rows).rows(), 6u);
}

TEST(Figures, RadiusAblationRuns) {
  Scale s = tiny_scale();
  s.total_minutes = 10.0;
  const auto rows = run_radius_ablation(s, 10, 10);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(radius_table(rows).rows(), 4u);
  // r = 2 with deflating agents wrongly cuts no more good peers than r = 1.
  double r1_deflate = -1.0, r2_deflate = -1.0;
  for (const auto& r : rows) {
    if (r.report == "deflate") {
      (r.radius == 1 ? r1_deflate : r2_deflate) = r.false_negative;
    }
  }
  EXPECT_LE(r2_deflate, r1_deflate + 0.5);
}

TEST(Figures, DefaultScaleHonorsEnvironment) {
  unsetenv("DDP_FULL");
  unsetenv("DDP_TRIALS");
  const Scale lap = default_scale();
  EXPECT_EQ(lap.peers, 600u);
  setenv("DDP_FULL", "1", 1);
  setenv("DDP_TRIALS", "5", 1);
  const Scale full = default_scale();
  EXPECT_EQ(full.peers, 2000u);
  EXPECT_EQ(full.trials, 5u);
  unsetenv("DDP_FULL");
  unsetenv("DDP_TRIALS");
}

TEST(Scenario, DeterministicForSameSeed) {
  ScenarioConfig cfg = paper_scenario(150, 10, defense::Kind::kDdPolice, 11);
  cfg.total_minutes = 8.0;
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].traffic_messages,
                     b.history[i].traffic_messages);
    EXPECT_DOUBLE_EQ(a.history[i].success_rate, b.history[i].success_rate);
  }
  EXPECT_EQ(a.decisions.size(), b.decisions.size());
}

TEST(Extensions, DefenseComparisonShape) {
  Scale s = tiny_scale();
  s.total_minutes = 12.0;
  const auto rows = run_defense_comparison(s, 12, 21);
  ASSERT_EQ(rows.size(), 5u);
  const auto& healthy = rows[0];
  const auto& none = rows[1];
  const auto& naive = rows[2];
  const auto& ddp = rows[4];
  EXPECT_GT(healthy.success_pct, none.success_pct);
  // DD-POLICE restores more service than no defense.
  EXPECT_GT(ddp.success_pct, none.success_pct);
  // The strawman wrongly cuts more good peers than DD-POLICE.
  EXPECT_GE(naive.false_negative, ddp.false_negative);
  EXPECT_GT(ddp.bad_identified_pct, 50.0);
  EXPECT_EQ(defense_table(rows).rows(), 5u);
}

TEST(Extensions, TopologyAblationRuns) {
  Scale s = tiny_scale();
  s.total_minutes = 10.0;
  const auto rows = run_topology_ablation(s, 10, 22);
  ASSERT_EQ(rows.size(), 4u);  // BA, Waxman, ER, two-tier
  for (const auto& r : rows) {
    EXPECT_GT(r.baseline_success_pct, 50.0) << r.model;
    EXPECT_GE(r.defended_success_pct, r.attacked_success_pct - 5.0) << r.model;
  }
  EXPECT_EQ(topology_table(rows).rows(), 4u);
}

TEST(Extensions, ChurnAblationShape) {
  Scale s = tiny_scale();
  s.total_minutes = 10.0;
  const auto rows = run_churn_ablation(s, 10, 23);
  ASSERT_EQ(rows.size(), 5u);
  // A static overlay wrongly cuts (essentially) nobody; fast churn is the
  // staleness worst case.
  EXPECT_LE(rows[0].false_negative, 1.0);
  EXPECT_GE(rows[2].false_negative, rows[0].false_negative);
  EXPECT_EQ(churn_table(rows).rows(), 5u);
}

TEST(Extensions, RejoinStudyShape) {
  Scale s = tiny_scale();
  s.total_minutes = 12.0;
  const auto rows = run_rejoin_study(s, 10, 24);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_DOUBLE_EQ(rows[0].attack_rejoins, 0.0);  // one-shot
  // Persistent attackers force continued disconnect work.
  EXPECT_GE(rows[3].bad_cut_events, rows[0].bad_cut_events);
  EXPECT_EQ(rejoin_table(rows).rows(), 4u);
}

TEST(Extensions, AttackRateDetectabilityCliff) {
  Scale s = tiny_scale();
  s.total_minutes = 10.0;
  const auto rows = run_attack_rate_sweep(s, 10, 25);
  ASSERT_EQ(rows.size(), 7u);
  // Below the 500/min warning threshold nothing is suspected...
  EXPECT_LT(rows[0].bad_identified_pct, 30.0);
  // ...well above it, identification is near-total.
  EXPECT_GT(rows.back().bad_identified_pct, 70.0);
  EXPECT_EQ(attack_rate_table(rows).rows(), 7u);
}

TEST(Scenario, NaiveCutHurtsMoreGoodPeersThanDdPolice) {
  const std::uint64_t seed = 12;
  ScenarioConfig naive = paper_scenario(250, 10, defense::Kind::kNaiveCut, seed);
  naive.total_minutes = 12.0;
  ScenarioConfig ddp = paper_scenario(250, 10, defense::Kind::kDdPolice, seed);
  ddp.total_minutes = 12.0;
  const auto r_naive = run_scenario(naive);
  const auto r_ddp = run_scenario(ddp);
  // The Sec. 2.1 argument: blind rate cutting wrongly disconnects the
  // forwarders; DD-POLICE's buddy groups exonerate them.
  EXPECT_GT(r_naive.errors.false_negative, r_ddp.errors.false_negative);
}

}  // namespace
}  // namespace ddp::experiments
