// Metrics pipeline tests: the paper's error taxonomy (with its swapped
// naming), the damage-rate series with the 20% -> 15% recovery rule, and
// run summaries.

#include <gtest/gtest.h>

#include "metrics/damage.hpp"
#include "metrics/errors.hpp"
#include "metrics/summary.hpp"

namespace ddp::metrics {
namespace {

core::Decision cut(double minute, PeerId judge, PeerId suspect) {
  core::Decision d;
  d.minute = minute;
  d.judge = judge;
  d.suspect = suspect;
  return d;
}

TEST(Errors, PaperNamingSemantics) {
  // Peers 0,1 bad; 2,3,4 good. Decisions: 0 cut twice, 2 wrongly cut; 1
  // never identified.
  std::vector<char> is_bad{1, 1, 0, 0, 0};
  std::vector<core::Decision> ds{cut(6, 9, 0), cut(7, 8, 0), cut(6, 9, 2)};
  const auto t = tally_errors(ds, is_bad, 5.0);
  EXPECT_EQ(t.false_negative, 1u);  // good peer 2 wrongly cut
  EXPECT_EQ(t.false_positive, 1u);  // bad peer 1 never identified
  EXPECT_EQ(t.false_judgment, 2u);
  EXPECT_EQ(t.bad_cut_events, 2u);
  EXPECT_EQ(t.good_cut_events, 1u);
  EXPECT_DOUBLE_EQ(t.mean_detection_minute, 1.0);  // 6 - 5
}

TEST(Errors, DistinctGoodPeersCountedOnce) {
  std::vector<char> is_bad{0, 0};
  std::vector<core::Decision> ds{cut(1, 1, 0), cut(2, 1, 0), cut(3, 1, 0)};
  const auto t = tally_errors(ds, is_bad, 0.0);
  EXPECT_EQ(t.false_negative, 1u);
  EXPECT_EQ(t.good_cut_events, 3u);
}

TEST(Errors, NoDecisionsAllBadMissed) {
  std::vector<char> is_bad{1, 1, 0};
  const auto t = tally_errors({}, is_bad, 0.0);
  EXPECT_EQ(t.false_positive, 2u);
  EXPECT_EQ(t.false_negative, 0u);
  EXPECT_DOUBLE_EQ(t.mean_detection_minute, -1.0);
}

TEST(Errors, OutOfRangeSuspectIgnored) {
  std::vector<char> is_bad{1};
  std::vector<core::Decision> ds{cut(1, 0, 57)};
  const auto t = tally_errors(ds, is_bad, 0.0);
  EXPECT_EQ(t.false_negative, 0u);
  EXPECT_EQ(t.false_positive, 1u);
}

flow::MinuteReport report(double minute, double success) {
  flow::MinuteReport r;
  r.minute = minute;
  r.success_rate = success;
  return r;
}

TEST(Damage, SeriesAndRecoveryRule) {
  // Baseline 1.0; success dips to 0.5 (D=50%) then recovers through 0.8
  // (D=20%) to 0.9 (D=10%).
  std::vector<flow::MinuteReport> h{
      report(1, 1.0), report(2, 0.5),  report(3, 0.6),
      report(4, 0.8), report(5, 0.84), report(6, 0.9),
  };
  const auto a = analyze_damage(h, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(a.peak_damage, 50.0);
  EXPECT_DOUBLE_EQ(a.onset_minute, 2.0);
  // D <= 15% first at minute 6 (16% at minute 5 is above target).
  EXPECT_DOUBLE_EQ(a.recovery_minutes, 4.0);
}

TEST(Damage, NeverRecovered) {
  std::vector<flow::MinuteReport> h{report(1, 0.4), report(2, 0.5)};
  const auto a = analyze_damage(h, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(a.onset_minute, 1.0);
  EXPECT_DOUBLE_EQ(a.recovery_minutes, -1.0);
  EXPECT_GT(a.stabilized_damage, 40.0);
}

TEST(Damage, NoOnsetMeansNoRecoveryMeasured) {
  std::vector<flow::MinuteReport> h{report(1, 0.95), report(2, 0.92)};
  const auto a = analyze_damage(h, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(a.onset_minute, -1.0);
  EXPECT_DOUBLE_EQ(a.recovery_minutes, -1.0);
}

TEST(Damage, WarmupSkipped) {
  std::vector<flow::MinuteReport> h{report(1, 0.1), report(5, 0.9)};
  const auto a = analyze_damage(h, 1.0, 3.0);
  EXPECT_EQ(a.damage.size(), 1u);
  EXPECT_DOUBLE_EQ(a.peak_damage, 10.0);
}

TEST(Damage, ZeroBaselineYieldsEmpty) {
  std::vector<flow::MinuteReport> h{report(1, 0.4)};
  const auto a = analyze_damage(h, 0.0, 0.0);
  EXPECT_TRUE(a.damage.empty());
}

TEST(Damage, BetterThanBaselineClampsToZero) {
  std::vector<flow::MinuteReport> h{report(1, 1.2)};
  const auto a = analyze_damage(h, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(a.peak_damage, 0.0);
}

TEST(Summary, AveragesSkipWarmup) {
  std::vector<flow::MinuteReport> h;
  for (int m = 1; m <= 10; ++m) {
    flow::MinuteReport r;
    r.minute = m;
    r.traffic_messages = m <= 5 ? 1000.0 : 2000.0;
    r.overhead_messages = 10.0;
    r.success_rate = 0.5;
    r.response_time = 1.0;
    r.dropped = 7.0;
    r.reach_per_query = 100.0;
    h.push_back(r);
  }
  const auto s = summarize(h, 6.0);
  EXPECT_DOUBLE_EQ(s.minutes_measured, 5.0);
  EXPECT_DOUBLE_EQ(s.avg_traffic_per_minute, 2010.0);  // includes overhead
  EXPECT_DOUBLE_EQ(s.avg_overhead_per_minute, 10.0);
  EXPECT_DOUBLE_EQ(s.avg_success_rate, 0.5);
  EXPECT_DOUBLE_EQ(s.avg_drop_per_minute, 7.0);
}

TEST(Summary, EmptyHistory) {
  const auto s = summarize({}, 0.0);
  EXPECT_DOUBLE_EQ(s.minutes_measured, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_success_rate, 0.0);
}

TEST(Summary, FromMinutePastEndMeasuresNothing) {
  std::vector<flow::MinuteReport> h{report(1, 0.9), report(2, 0.8)};
  const auto s = summarize(h, 10.0);
  EXPECT_DOUBLE_EQ(s.minutes_measured, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_success_rate, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_traffic_per_minute, 0.0);
}

TEST(Summary, SingleMinuteIsItsOwnAverage) {
  flow::MinuteReport r = report(4, 0.75);
  r.traffic_messages = 1234.0;
  r.overhead_messages = 6.0;
  r.response_time = 1.5;
  const auto s = summarize({r}, 4.0);  // boundary minute is included
  EXPECT_DOUBLE_EQ(s.minutes_measured, 1.0);
  EXPECT_DOUBLE_EQ(s.avg_success_rate, 0.75);
  EXPECT_DOUBLE_EQ(s.avg_traffic_per_minute, 1240.0);
  EXPECT_DOUBLE_EQ(s.avg_overhead_per_minute, 6.0);
  EXPECT_DOUBLE_EQ(s.avg_response_time, 1.5);
}

TEST(Summary, AttachFaultStatsRoundTrip) {
  RunSummary s = summarize({report(1, 0.5)}, 0.0);
  attach_fault_stats(s, 11, 22, 33, 44, 5, 6);
  EXPECT_DOUBLE_EQ(s.fault_timeouts, 11.0);
  EXPECT_DOUBLE_EQ(s.fault_retries, 22.0);
  EXPECT_DOUBLE_EQ(s.fault_late_replies, 33.0);
  EXPECT_DOUBLE_EQ(s.fault_corrupt_rejects, 44.0);
  EXPECT_DOUBLE_EQ(s.fault_crashed, 5.0);
  EXPECT_DOUBLE_EQ(s.fault_stalled, 6.0);
  // Attaching must not disturb the averaged quality metrics.
  EXPECT_DOUBLE_EQ(s.avg_success_rate, 0.5);
  EXPECT_DOUBLE_EQ(s.minutes_measured, 1.0);
}

}  // namespace
}  // namespace ddp::metrics
