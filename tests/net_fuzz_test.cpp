// Deterministic byte-mutation fuzzing of the wire codec. Thousands of
// seeded truncations, bit flips, and length-field rewrites are thrown at
// decode_ex(); the invariants are (a) never crash or read out of bounds,
// (b) every rejection carries a classified DecodeStatus and a non-empty
// detail string, (c) anything accepted re-encodes to a decodable buffer.
// Run under the asan-ubsan preset this doubles as a memory-safety harness.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/bytes.hpp"
#include "net/guid.hpp"
#include "net/message.hpp"
#include "util/rng.hpp"

namespace ddp::net {
namespace {

// One well-formed message per payload type, exercising every field codec.
std::vector<std::vector<std::uint8_t>> corpus() {
  util::Rng rng(0xf022);
  std::vector<Message> msgs;

  Message ping;
  ping.header.guid = Guid::random(rng);
  ping.payload = Ping{};
  msgs.push_back(ping);

  Message pong;
  pong.header.guid = Guid::random(rng);
  Pong po;
  po.port = 6346;
  po.ip = 0x0a000001;
  po.files_shared = 1200;
  po.kilobytes_shared = 987654;
  pong.payload = po;
  msgs.push_back(pong);

  Message query;
  query.header.guid = Guid::random(rng);
  Query q;
  q.min_speed = 64;
  q.search = "metallica one";
  query.payload = std::move(q);
  msgs.push_back(query);

  Message hit;
  hit.header.guid = Guid::random(rng);
  QueryHit qh;
  qh.port = 6347;
  qh.ip = 0xc0a80101;
  qh.speed = 350;
  for (int i = 0; i < 3; ++i) {
    QueryHitRecord rec;
    rec.file_index = static_cast<std::uint32_t>(100 + i);
    rec.file_size = static_cast<std::uint32_t>(4096 * (i + 1));
    rec.file_name = "song-" + std::to_string(i) + ".mp3";
    qh.records.push_back(std::move(rec));
  }
  qh.servent_id = Guid::random(rng);
  hit.payload = std::move(qh);
  msgs.push_back(hit);

  Message traffic;
  traffic.header.guid = Guid::random(rng);
  NeighborTraffic nt;
  nt.source_ip = 0x0a000002;
  nt.suspect_ip = 0x0a000003;
  nt.timestamp = 61;
  nt.outgoing_queries = 240;
  nt.incoming_queries = 7;
  traffic.payload = nt;
  msgs.push_back(traffic);

  Message list;
  list.header.guid = Guid::random(rng);
  NeighborList nl;
  for (std::uint32_t i = 0; i < 6; ++i) {
    nl.entries.push_back({0x0a000100 + i, static_cast<std::uint16_t>(6346 + i)});
  }
  list.payload = std::move(nl);
  msgs.push_back(list);

  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(msgs.size());
  for (const auto& m : msgs) out.push_back(encode(m));
  return out;
}

// The decoder's full contract on an arbitrary buffer: classified outcome,
// agreement between decode() and decode_ex(), and a round-trippable result.
void check_decode_contract(std::span<const std::uint8_t> data) {
  const DecodeResult res = decode_ex(data);
  std::string error;
  std::size_t consumed = 0;
  const auto legacy = decode(data, &error, &consumed);
  EXPECT_EQ(legacy.has_value(), res.message.has_value());
  if (res.message) {
    EXPECT_EQ(res.status, DecodeStatus::kOk);
    EXPECT_EQ(res.consumed, kHeaderSize + res.message->header.payload_length);
    EXPECT_EQ(consumed, res.consumed);
    // Whatever we accepted must survive a re-encode/re-decode cycle.
    const auto bytes = encode(*res.message);
    const DecodeResult again = decode_ex(bytes);
    ASSERT_TRUE(again.message) << decode_status_name(again.status);
    EXPECT_EQ(again.message->type(), res.message->type());
  } else {
    EXPECT_NE(res.status, DecodeStatus::kOk);
    EXPECT_FALSE(res.detail.empty());
    EXPECT_EQ(error, res.detail);
    EXPECT_EQ(res.consumed, 0u);
    EXPECT_NE(decode_status_name(res.status), std::string_view("?"));
  }
}

TEST(NetFuzz, CorpusDecodesCleanly) {
  for (const auto& bytes : corpus()) {
    const DecodeResult res = decode_ex(bytes);
    ASSERT_TRUE(res.message) << decode_status_name(res.status) << ": "
                             << res.detail;
    EXPECT_EQ(res.consumed, bytes.size());
  }
}

TEST(NetFuzz, TruncationsNeverCrashAndAlwaysClassify) {
  for (const auto& bytes : corpus()) {
    for (std::size_t len = 0; len <= bytes.size(); ++len) {
      std::vector<std::uint8_t> cut(bytes.begin(),
                                    bytes.begin() + static_cast<std::ptrdiff_t>(len));
      check_decode_contract(cut);
      const DecodeResult res = decode_ex(cut);
      if (len < kHeaderSize) {
        EXPECT_EQ(res.status, DecodeStatus::kShortHeader);
      } else if (len < bytes.size()) {
        // Header intact, body missing bytes: the declared length no longer
        // fits, which must be caught before any body parsing.
        EXPECT_EQ(res.status, DecodeStatus::kTruncatedPayload);
      } else {
        EXPECT_EQ(res.status, DecodeStatus::kOk);
      }
    }
  }
}

TEST(NetFuzz, SeededBitFlipsNeverCrash) {
  util::Rng rng(20260806);
  const auto seeds = corpus();
  for (int iter = 0; iter < 4000; ++iter) {
    auto bytes = seeds[rng.below(static_cast<std::uint32_t>(seeds.size()))];
    const std::uint32_t flips = 1 + rng.below(8);
    for (std::uint32_t f = 0; f < flips; ++f) {
      const auto at = rng.below(static_cast<std::uint32_t>(bytes.size()));
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    }
    if (rng.chance(0.3)) {
      bytes.resize(rng.below(static_cast<std::uint32_t>(bytes.size()) + 1));
    }
    check_decode_contract(bytes);
  }
}

TEST(NetFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(77);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    check_decode_contract(junk);
  }
}

TEST(NetFuzz, OversizedLengthFieldIsRejectedBeforeBodyWork) {
  auto bytes = corpus()[4];  // Neighbor_Traffic
  // Rewrite the little-endian length at offset 19 to a huge value. The
  // buffer is nowhere near that long, but the cap must fire first so a
  // flipped high bit can never drive allocation.
  bytes[19] = 0xff;
  bytes[20] = 0xff;
  bytes[21] = 0xff;
  bytes[22] = 0x7f;
  const DecodeResult res = decode_ex(bytes);
  EXPECT_FALSE(res.message);
  EXPECT_EQ(res.status, DecodeStatus::kOversizedPayload);
  EXPECT_EQ(decode_status_name(res.status), "oversized-payload");

  // Just past the cap is rejected; exactly at the cap falls through to the
  // truncation check instead.
  const std::uint32_t cap = static_cast<std::uint32_t>(kMaxPayloadLength);
  for (int i = 0; i < 4; ++i) {
    bytes[19 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(((cap + 1) >> (8 * i)) & 0xff);
  }
  EXPECT_EQ(decode_ex(bytes).status, DecodeStatus::kOversizedPayload);
  for (int i = 0; i < 4; ++i) {
    bytes[19 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((cap >> (8 * i)) & 0xff);
  }
  EXPECT_EQ(decode_ex(bytes).status, DecodeStatus::kTruncatedPayload);
}

TEST(NetFuzz, UnknownTypeByteClassified) {
  auto bytes = corpus()[0];  // Ping
  bytes[16] = 0x42;
  const DecodeResult res = decode_ex(bytes);
  EXPECT_EQ(res.status, DecodeStatus::kUnknownType);
  EXPECT_EQ(res.detail, "unknown payload type byte");
}

TEST(NetFuzz, ByteReaderSurvivesRandomSlices) {
  util::Rng rng(5150);
  std::vector<std::uint8_t> blob(256);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.below(256));
  for (int iter = 0; iter < 2000; ++iter) {
    const auto start = rng.below(static_cast<std::uint32_t>(blob.size()));
    const auto len =
        rng.below(static_cast<std::uint32_t>(blob.size()) - start + 1);
    ByteReader r(std::span<const std::uint8_t>(blob.data() + start, len));
    // A random read program; sticky failure means later reads return zeros
    // instead of touching memory.
    for (int op = 0; op < 12; ++op) {
      switch (rng.below(6)) {
        case 0: (void)r.u8(); break;
        case 1: (void)r.u16(); break;
        case 2: (void)r.u32(); break;
        case 3: (void)r.u64(); break;
        case 4: (void)r.bytes(rng.below(64)); break;
        default: (void)r.cstring(); break;
      }
    }
    if (!r.ok()) {
      EXPECT_EQ(r.u32(), 0u);  // failure is sticky and value-safe
    }
  }
}

}  // namespace
}  // namespace ddp::net
