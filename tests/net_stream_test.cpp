// StreamDecoder tests: incremental framing over arbitrary TCP read
// boundaries must be byte-for-byte equivalent to whole-buffer decoding.
// The core property is exhaustive: every sample message is decoded with
// the stream split at every possible byte boundary, and a concatenated
// multi-message stream is fed one byte at a time.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/guid.hpp"
#include "net/message.hpp"
#include "net/stream.hpp"

namespace ddp::net {
namespace {

Guid guid_from(std::uint8_t seed) {
  Guid g;
  for (std::size_t i = 0; i < g.bytes.size(); ++i) {
    g.bytes[i] = static_cast<std::uint8_t>(seed + i);
  }
  return g;
}

// One sample message per payload type, with non-trivial bodies.
std::vector<Message> sample_messages() {
  std::vector<Message> out;

  Message ping;
  ping.header.guid = guid_from(1);
  ping.header.ttl = 7;
  ping.payload = Ping{};
  out.push_back(ping);

  Message pong;
  pong.header.guid = guid_from(2);
  pong.payload = Pong{.port = 6347, .ip = 0x0a000001,
                      .files_shared = 12, .kilobytes_shared = 3400};
  out.push_back(pong);

  Message query;
  query.header.guid = guid_from(3);
  query.header.ttl = 5;
  query.header.hops = 2;
  query.payload = Query{.min_speed = 64, .search = "ubuntu iso"};
  out.push_back(query);

  Message hit;
  hit.header.guid = guid_from(4);
  QueryHit qh;
  qh.port = 6346;
  qh.ip = 0x0a000002;
  qh.speed = 128;
  qh.records.push_back({.file_index = 9, .file_size = 4096,
                        .file_name = "ubuntu.iso"});
  qh.records.push_back({.file_index = 10, .file_size = 8192,
                        .file_name = "notes.txt"});
  qh.servent_id = guid_from(40);
  hit.payload = std::move(qh);
  out.push_back(std::move(hit));

  Message traffic;
  traffic.header.guid = guid_from(5);
  traffic.payload = NeighborTraffic{.source_ip = 0x0a000003,
                                    .suspect_ip = 0x0a000004,
                                    .timestamp = 600,
                                    .outgoing_queries = 2100,
                                    .incoming_queries = 3};
  out.push_back(traffic);

  Message list;
  list.header.guid = guid_from(6);
  NeighborList nl;
  for (std::uint32_t i = 0; i < 5; ++i) {
    nl.entries.push_back({.ip = 0x0a000010 + i,
                          .port = static_cast<std::uint16_t>(7000 + i)});
  }
  list.payload = std::move(nl);
  out.push_back(std::move(list));

  return out;
}

bool same_message(const Message& a, const Message& b) {
  return encode(a) == encode(b);
}

// Drain everything currently decodable; append to `got`. Returns the
// final non-kMessage status.
StreamStatus drain(StreamDecoder& dec, std::vector<Message>& got) {
  for (;;) {
    StreamResult r = dec.next();
    if (r.status != StreamStatus::kMessage) return r.status;
    got.push_back(std::move(*r.message));
  }
}

// ------------------------------------------------- split equivalence

TEST(StreamDecoder, WholeBufferMatchesDecodeEx) {
  for (const Message& m : sample_messages()) {
    const auto wire = encode(m);
    StreamDecoder dec;
    dec.feed(wire);
    StreamResult r = dec.next();
    ASSERT_EQ(r.status, StreamStatus::kMessage)
        << payload_type_name(m.type());
    EXPECT_TRUE(same_message(*r.message, m));
    EXPECT_EQ(dec.next().status, StreamStatus::kNeedMore);
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

TEST(StreamDecoder, EveryByteBoundarySplitMatchesWholeBuffer) {
  for (const Message& m : sample_messages()) {
    const auto wire = encode(m);
    for (std::size_t split = 0; split <= wire.size(); ++split) {
      StreamDecoder dec;
      std::vector<Message> got;
      dec.feed(std::span<const std::uint8_t>(wire.data(), split));
      StreamStatus st = drain(dec, got);
      if (split < wire.size()) {
        ASSERT_EQ(st, StreamStatus::kNeedMore)
            << payload_type_name(m.type()) << " split=" << split;
        ASSERT_TRUE(got.empty());
      }
      dec.feed(std::span<const std::uint8_t>(wire.data() + split,
                                             wire.size() - split));
      st = drain(dec, got);
      ASSERT_EQ(st, StreamStatus::kNeedMore);
      ASSERT_EQ(got.size(), 1u)
          << payload_type_name(m.type()) << " split=" << split;
      EXPECT_TRUE(same_message(got[0], m));
      EXPECT_EQ(dec.buffered(), 0u);
    }
  }
}

TEST(StreamDecoder, ByteAtATimeOverConcatenatedStream) {
  const auto msgs = sample_messages();
  std::vector<std::uint8_t> wire;
  for (const Message& m : msgs) {
    const auto one = encode(m);
    wire.insert(wire.end(), one.begin(), one.end());
  }
  StreamDecoder dec;
  std::vector<Message> got;
  for (const std::uint8_t b : wire) {
    dec.feed(std::span<const std::uint8_t>(&b, 1));
    drain(dec, got);
  }
  ASSERT_EQ(got.size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_TRUE(same_message(got[i], msgs[i])) << "message " << i;
  }
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_EQ(dec.messages_decoded(), msgs.size());
}

TEST(StreamDecoder, MultipleMessagesInOneFeed) {
  const auto msgs = sample_messages();
  std::vector<std::uint8_t> wire;
  for (const Message& m : msgs) {
    const auto one = encode(m);
    wire.insert(wire.end(), one.begin(), one.end());
  }
  // Leave a dangling partial header to prove the tail stays buffered.
  Message extra;
  extra.header.guid = guid_from(9);
  extra.payload = Ping{};
  const auto extra_wire = encode(extra);
  wire.insert(wire.end(), extra_wire.begin(), extra_wire.end() - 3);

  StreamDecoder dec;
  dec.feed(wire);
  std::vector<Message> got;
  EXPECT_EQ(drain(dec, got), StreamStatus::kNeedMore);
  ASSERT_EQ(got.size(), msgs.size());
  EXPECT_EQ(dec.buffered(), extra_wire.size() - 3);

  dec.feed(std::span<const std::uint8_t>(extra_wire.data() +
                                             extra_wire.size() - 3, 3));
  EXPECT_EQ(drain(dec, got), StreamStatus::kNeedMore);
  ASSERT_EQ(got.size(), msgs.size() + 1);
  EXPECT_TRUE(same_message(got.back(), extra));
}

// ------------------------------------------------------- fast failure

TEST(StreamDecoder, UnknownTypeFailsAtHeaderNotPayload) {
  // 23 header bytes with a bogus type and a huge-but-legal length: the
  // decoder must reject on the header alone instead of waiting for the
  // declared payload.
  std::vector<std::uint8_t> wire(kHeaderSize, 0);
  wire[16] = 0x42;  // not a known payload type
  wire[19] = 0x10;  // payload_length = 16 (LE), never arrives
  StreamDecoder dec;
  dec.feed(wire);
  StreamResult r = dec.next();
  EXPECT_EQ(r.status, StreamStatus::kError);
  EXPECT_EQ(r.error, DecodeStatus::kUnknownType);
  EXPECT_TRUE(dec.failed());
}

TEST(StreamDecoder, OversizedDeclaredLengthFailsImmediately) {
  std::vector<std::uint8_t> wire(kHeaderSize, 0);
  wire[16] = 0x00;  // Ping
  // payload_length = kMaxPayloadLength + 1, little-endian.
  const std::uint32_t len = static_cast<std::uint32_t>(kMaxPayloadLength) + 1;
  wire[19] = static_cast<std::uint8_t>(len);
  wire[20] = static_cast<std::uint8_t>(len >> 8);
  wire[21] = static_cast<std::uint8_t>(len >> 16);
  wire[22] = static_cast<std::uint8_t>(len >> 24);
  StreamDecoder dec;
  dec.feed(wire);
  StreamResult r = dec.next();
  EXPECT_EQ(r.status, StreamStatus::kError);
  EXPECT_EQ(r.error, DecodeStatus::kOversizedPayload);
}

TEST(StreamDecoder, MalformedBodyLatchesError) {
  // A Ping whose header claims a 4-byte body: kMalformedBody once the
  // bytes arrive, and the failure is sticky even if good bytes follow.
  std::vector<std::uint8_t> wire(kHeaderSize + 4, 0);
  wire[16] = 0x00;  // Ping
  wire[19] = 0x04;  // payload_length = 4
  StreamDecoder dec;
  dec.feed(std::span<const std::uint8_t>(wire.data(), kHeaderSize));
  EXPECT_EQ(dec.next().status, StreamStatus::kNeedMore);
  dec.feed(std::span<const std::uint8_t>(wire.data() + kHeaderSize, 4));
  StreamResult r = dec.next();
  EXPECT_EQ(r.status, StreamStatus::kError);
  EXPECT_EQ(r.error, DecodeStatus::kMalformedBody);

  Message good;
  good.header.guid = guid_from(7);
  good.payload = Ping{};
  dec.feed(encode(good));
  r = dec.next();
  EXPECT_EQ(r.status, StreamStatus::kError);
  EXPECT_EQ(r.error, DecodeStatus::kMalformedBody);
  EXPECT_TRUE(dec.failed());
  EXPECT_EQ(dec.messages_decoded(), 0u);
}

TEST(StreamDecoder, BufferCapWedgeIsAnError) {
  // A decoder capped below a frame's size can never complete that frame;
  // it must report an error instead of asking for more forever.
  Message query;
  query.header.guid = guid_from(8);
  query.payload = Query{.min_speed = 0, .search = "a long enough search"};
  const auto wire = encode(query);
  StreamDecoder dec(kHeaderSize + 2);  // cap below the frame size
  dec.feed(std::span<const std::uint8_t>(wire.data(), wire.size() - 1));
  StreamResult r = dec.next();
  EXPECT_EQ(r.status, StreamStatus::kError);
  EXPECT_EQ(r.error, DecodeStatus::kOversizedPayload);
  EXPECT_TRUE(dec.failed());
}

TEST(StreamDecoder, EmptyFeedIsANoOp) {
  StreamDecoder dec;
  dec.feed({});
  EXPECT_EQ(dec.next().status, StreamStatus::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

}  // namespace
}  // namespace ddp::net
