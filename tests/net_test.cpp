// Wire-format tests: bounds-checked byte codecs, GUIDs, and the Gnutella
// 0.6 message framing including the paper's Neighbor_Traffic extension.
// The Table 1 layout is asserted byte-for-byte.

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/bytes.hpp"
#include "net/guid.hpp"
#include "net/message.hpp"
#include "util/rng.hpp"

namespace ddp::net {
namespace {

// ---------------------------------------------------------------- bytes

TEST(Bytes, LittleEndianEncoding) {
  ByteWriter w;
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 6u);
  EXPECT_EQ(d[0], 0x34);
  EXPECT_EQ(d[1], 0x12);
  EXPECT_EQ(d[2], 0xef);
  EXPECT_EQ(d[3], 0xbe);
  EXPECT_EQ(d[4], 0xad);
  EXPECT_EQ(d[5], 0xde);
}

TEST(Bytes, RoundTripAllWidths) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0x01020304);
  w.u64(0x1122334455667788ULL);
  w.cstring("hello");
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0x01020304u);
  EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.cstring(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, ReaderFailsOnShortInput) {
  const std::uint8_t buf[] = {1, 2};
  ByteReader r(buf);
  (void)r.u32();
  EXPECT_FALSE(r.ok());
  // Sticky failure: every subsequent read also fails.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, CstringWithoutNulFails) {
  const std::uint8_t buf[] = {'a', 'b', 'c'};
  ByteReader r(buf);
  (void)r.cstring();
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, EmptyCstring) {
  ByteWriter w;
  w.cstring("");
  ByteReader r(w.data());
  EXPECT_EQ(r.cstring(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, PatchU32) {
  ByteWriter w;
  w.u32(0);
  w.u8(9);
  w.patch_u32(0, 0xcafebabe);
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 0xcafebabeu);
  EXPECT_EQ(r.u8(), 9);
}

TEST(Bytes, Ipv4Rendering) {
  EXPECT_EQ(ipv4_to_string(0x0a000001), "10.0.0.1");
  EXPECT_EQ(ipv4_to_string(0xffffffff), "255.255.255.255");
}

// -------------------------------------------------------------- address

TEST(Address, PeerAddressBijection) {
  for (PeerId id : {PeerId{0}, PeerId{1}, PeerId{1999}, PeerId{0x00ffffff}}) {
    EXPECT_EQ(peer_from_address(peer_address(id)), id);
  }
  EXPECT_EQ(peer_from_address(0x0b000001), kInvalidPeer);  // not 10/8
}

// ----------------------------------------------------------------- guid

TEST(Guid, RandomGuidsAreDistinct) {
  util::Rng rng(1);
  const Guid a = Guid::random(rng);
  const Guid b = Guid::random(rng);
  EXPECT_NE(a, b);
}

TEST(Guid, ModernServentMarkers) {
  util::Rng rng(2);
  const Guid g = Guid::random(rng);
  EXPECT_EQ(g.bytes[8], 0xff);
  EXPECT_EQ(g.bytes[15], 0x00);
}

TEST(Guid, HexRendering) {
  Guid g;
  g.bytes.fill(0);
  g.bytes[0] = 0xab;
  const std::string s = g.to_string();
  ASSERT_EQ(s.size(), 32u);
  EXPECT_EQ(s.substr(0, 2), "ab");
}

TEST(Guid, HashSpreadsValues) {
  util::Rng rng(3);
  GuidHash h;
  std::set<std::size_t> hashes;
  for (int i = 0; i < 1000; ++i) hashes.insert(h(Guid::random(rng)));
  EXPECT_GT(hashes.size(), 995u);
}

// ------------------------------------------------------------- messages

Message make(PayloadType type, util::Rng& rng) {
  Message m;
  m.header.guid = Guid::random(rng);
  m.header.ttl = 7;
  m.header.hops = 2;
  switch (type) {
    case PayloadType::kPing:
      m.payload = Ping{};
      break;
    case PayloadType::kPong:
      m.payload = Pong{6346, 0x0a000005, 120, 44000};
      break;
    case PayloadType::kQuery:
      m.payload = Query{0, "free mp3"};
      break;
    case PayloadType::kQueryHit: {
      QueryHit qh;
      qh.port = 6346;
      qh.ip = 0x0a000007;
      qh.speed = 350;
      qh.records.push_back({12, 1 << 20, "track01.mp3"});
      qh.records.push_back({77, 9999, "movie.avi"});
      qh.servent_id = Guid::random(rng);
      m.payload = qh;
      break;
    }
    case PayloadType::kNeighborTraffic:
      m.payload = NeighborTraffic{0x0a000001, 0x0a000002, 1234, 20000, 312};
      break;
    case PayloadType::kNeighborList: {
      NeighborList nl;
      nl.entries.push_back({0x0a000001, 6346});
      nl.entries.push_back({0x0a000009, 6347});
      m.payload = nl;
      break;
    }
  }
  return m;
}

class MessageRoundTripTest : public ::testing::TestWithParam<PayloadType> {};

TEST_P(MessageRoundTripTest, EncodeDecodeIdentity) {
  util::Rng rng(42);
  const Message in = make(GetParam(), rng);
  const auto bytes = encode(in);
  std::string err;
  std::size_t consumed = 0;
  const auto out = decode(bytes, &err, &consumed);
  ASSERT_TRUE(out.has_value()) << err;
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out->header.guid, in.header.guid);
  EXPECT_EQ(out->header.ttl, in.header.ttl);
  EXPECT_EQ(out->header.hops, in.header.hops);
  EXPECT_EQ(out->type(), GetParam());
  EXPECT_EQ(out->header.payload_length, bytes.size() - kHeaderSize);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, MessageRoundTripTest,
    ::testing::Values(PayloadType::kPing, PayloadType::kPong,
                      PayloadType::kQuery, PayloadType::kQueryHit,
                      PayloadType::kNeighborTraffic, PayloadType::kNeighborList),
    [](const auto& info) {
      return std::string(payload_type_name(info.param)) == "Neighbor_Traffic"
                 ? "NeighborTraffic"
             : std::string(payload_type_name(info.param)) == "Neighbor_List"
                 ? "NeighborList"
                 : std::string(payload_type_name(info.param));
    });

TEST(Message, HeaderLayoutIs23Bytes) {
  util::Rng rng(5);
  const Message m = make(PayloadType::kPing, rng);
  const auto bytes = encode(m);
  ASSERT_EQ(bytes.size(), kHeaderSize);
  // offset 16: payload type, 17: ttl, 18: hops, 19-22: length (LE).
  EXPECT_EQ(bytes[16], 0x00);
  EXPECT_EQ(bytes[17], 7);
  EXPECT_EQ(bytes[18], 2);
  EXPECT_EQ(bytes[19], 0);
  EXPECT_EQ(bytes[22], 0);
}

TEST(Message, QueryPayloadIsNulTerminatedString) {
  util::Rng rng(6);
  Message m = make(PayloadType::kQuery, rng);
  const auto bytes = encode(m);
  // min-speed u16, then the string, then NUL.
  ASSERT_EQ(bytes.size(), kHeaderSize + 2 + 8 + 1);
  EXPECT_EQ(bytes.back(), 0);
  EXPECT_EQ(bytes[kHeaderSize + 2], 'f');
}

TEST(NeighborTraffic, Table1ByteLayout) {
  // Table 1: Source IP @0-3, Suspect IP @4-7, timestamp @8-11,
  // outgoing @12-15, incoming @16-19 — 20 bytes total.
  NeighborTraffic nt;
  nt.source_ip = 0x11223344;
  nt.suspect_ip = 0x55667788;
  nt.timestamp = 0x01020304;
  nt.outgoing_queries = 20000;  // 0x4E20
  nt.incoming_queries = 312;    // 0x0138
  const auto body = encode_neighbor_traffic_body(nt);
  ASSERT_EQ(body.size(), kNeighborTrafficBodySize);
  EXPECT_EQ(body[0], 0x44);
  EXPECT_EQ(body[3], 0x11);
  EXPECT_EQ(body[4], 0x88);
  EXPECT_EQ(body[7], 0x55);
  EXPECT_EQ(body[8], 0x04);
  EXPECT_EQ(body[11], 0x01);
  EXPECT_EQ(body[12], 0x20);
  EXPECT_EQ(body[13], 0x4e);
  EXPECT_EQ(body[16], 0x38);
  EXPECT_EQ(body[17], 0x01);
}

TEST(NeighborTraffic, PayloadTypeIs0x83) {
  util::Rng rng(7);
  const Message m = make(PayloadType::kNeighborTraffic, rng);
  const auto bytes = encode(m);
  EXPECT_EQ(bytes[16], 0x83);
  EXPECT_EQ(bytes.size(), kHeaderSize + kNeighborTrafficBodySize);
}

TEST(NeighborTraffic, BodyRoundTrip) {
  NeighborTraffic nt{0x0a0000ff, 0x0a000010, 99, 12345, 678};
  const auto body = encode_neighbor_traffic_body(nt);
  const auto out = decode_neighbor_traffic_body(body);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->source_ip, nt.source_ip);
  EXPECT_EQ(out->suspect_ip, nt.suspect_ip);
  EXPECT_EQ(out->timestamp, nt.timestamp);
  EXPECT_EQ(out->outgoing_queries, nt.outgoing_queries);
  EXPECT_EQ(out->incoming_queries, nt.incoming_queries);
}

TEST(NeighborTraffic, WrongBodySizeRejected) {
  std::vector<std::uint8_t> short_body(19, 0);
  EXPECT_FALSE(decode_neighbor_traffic_body(short_body).has_value());
  std::vector<std::uint8_t> long_body(21, 0);
  EXPECT_FALSE(decode_neighbor_traffic_body(long_body).has_value());
}

TEST(Message, DecodeRejectsUnknownType) {
  util::Rng rng(8);
  auto bytes = encode(make(PayloadType::kPing, rng));
  bytes[16] = 0x42;
  std::string err;
  EXPECT_FALSE(decode(bytes, &err).has_value());
  EXPECT_NE(err.find("unknown"), std::string::npos);
}

TEST(Message, DecodeRejectsTruncatedPayload) {
  util::Rng rng(9);
  auto bytes = encode(make(PayloadType::kNeighborTraffic, rng));
  bytes.resize(bytes.size() - 1);
  std::string err;
  EXPECT_FALSE(decode(bytes, &err).has_value());
}

TEST(Message, DecodeRejectsEveryTruncationPoint) {
  // Property: no prefix of a valid message decodes successfully.
  util::Rng rng(10);
  for (auto type : {PayloadType::kPong, PayloadType::kQuery,
                    PayloadType::kQueryHit, PayloadType::kNeighborList}) {
    const auto bytes = encode(make(type, rng));
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::span<const std::uint8_t> prefix(bytes.data(), len);
      EXPECT_FALSE(decode(prefix).has_value())
          << "type " << payload_type_name(type) << " len " << len;
    }
  }
}

TEST(Message, DecodeRejectsOversizedDeclaredLength) {
  util::Rng rng(11);
  auto bytes = encode(make(PayloadType::kPong, rng));
  bytes[19] = 0xff;  // declared length far beyond the buffer
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Message, DecodeRejectsPingWithBody) {
  util::Rng rng(12);
  auto bytes = encode(make(PayloadType::kPing, rng));
  bytes.push_back(0x01);
  bytes[19] = 1;  // declare the extra byte
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Message, StreamWalkingViaConsumed) {
  util::Rng rng(13);
  std::vector<std::uint8_t> stream;
  for (auto type : {PayloadType::kQuery, PayloadType::kNeighborTraffic,
                    PayloadType::kPing}) {
    const auto b = encode(make(type, rng));
    stream.insert(stream.end(), b.begin(), b.end());
  }
  std::size_t offset = 0;
  std::vector<PayloadType> seen;
  while (offset < stream.size()) {
    std::size_t consumed = 0;
    const auto m = decode(
        std::span<const std::uint8_t>(stream.data() + offset,
                                      stream.size() - offset),
        nullptr, &consumed);
    ASSERT_TRUE(m.has_value());
    seen.push_back(m->type());
    offset += consumed;
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], PayloadType::kQuery);
  EXPECT_EQ(seen[1], PayloadType::kNeighborTraffic);
  EXPECT_EQ(seen[2], PayloadType::kPing);
}

TEST(Message, QueryHitRecordsSurviveRoundTrip) {
  util::Rng rng(14);
  const Message in = make(PayloadType::kQueryHit, rng);
  const auto out = decode(encode(in));
  ASSERT_TRUE(out.has_value());
  const auto& qh_in = std::get<QueryHit>(in.payload);
  const auto& qh_out = std::get<QueryHit>(out->payload);
  ASSERT_EQ(qh_out.records.size(), 2u);
  EXPECT_EQ(qh_out.records[0].file_name, qh_in.records[0].file_name);
  EXPECT_EQ(qh_out.records[1].file_size, qh_in.records[1].file_size);
  EXPECT_EQ(qh_out.servent_id, qh_in.servent_id);
}

TEST(Message, NeighborListRoundTripPreservesEntries) {
  util::Rng rng(15);
  const Message in = make(PayloadType::kNeighborList, rng);
  const auto out = decode(encode(in));
  ASSERT_TRUE(out.has_value());
  const auto& nl = std::get<NeighborList>(out->payload);
  ASSERT_EQ(nl.entries.size(), 2u);
  EXPECT_EQ(nl.entries[0].ip, 0x0a000001u);
  EXPECT_EQ(nl.entries[1].port, 6347);
}

TEST(Message, EmptyNeighborList) {
  util::Rng rng(16);
  Message m;
  m.header.guid = Guid::random(rng);
  m.payload = NeighborList{};
  const auto out = decode(encode(m));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(std::get<NeighborList>(out->payload).entries.empty());
}

TEST(Message, PayloadTypeNames) {
  EXPECT_EQ(payload_type_name(PayloadType::kNeighborTraffic), "Neighbor_Traffic");
  EXPECT_EQ(payload_type_name(PayloadType::kQuery), "Query");
}

// Property: random fuzz of valid encodings — flipping the type byte to a
// valid-but-different type must never crash (it may or may not decode).
TEST(Message, TypeConfusionDoesNotCrash) {
  util::Rng rng(17);
  const std::uint8_t types[] = {0x00, 0x01, 0x80, 0x81, 0x83, 0x84};
  for (int i = 0; i < 200; ++i) {
    auto bytes = encode(make(PayloadType::kQueryHit, rng));
    bytes[16] = types[rng.below(6)];
    (void)decode(bytes);  // must not crash or UB
  }
}

}  // namespace
}  // namespace ddp::net
