// Socket-engine tests, all single-threaded: two engines (or nodes) on
// loopback are stepped by alternating poll_once() calls, so every test is
// deterministic — no background threads, no sleeps longer than the
// timeouts under test.
//
// Covered here, per the deployment-mode requirements:
//   - two-node handshake + query -> hit round trip over real TCP;
//   - slow-reader backpressure: the writer disconnects the peer rather
//     than buffer without bound;
//   - half-open peer timeout: a TCP connection that never completes the
//     app handshake is dropped;
//   - SIGTERM clean shutdown with no leaked file descriptors.

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netengine/engine.hpp"
#include "netengine/node.hpp"
#include "netengine/timer_wheel.hpp"

namespace ddp::netengine {
namespace {

/// Open fds of this process (the leak detector for the shutdown test).
std::size_t open_fd_count() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  std::size_t n = 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n >= 3 ? n - 3 : 0;  // ".", "..", and the dirfd itself
}

/// Step a set of engines until `done` or `rounds` poll rounds pass.
template <typename Pred>
bool pump_until(std::vector<Engine*> engines, Pred done, int rounds = 400) {
  for (int i = 0; i < rounds; ++i) {
    if (done()) return true;
    for (Engine* e : engines) e->poll_once(5);
  }
  return done();
}

net::Message make_ping() {
  net::Message m;
  m.header.guid.bytes[0] = 0x42;
  m.payload = net::Ping{};
  return m;
}

// ------------------------------------------------------------ timer wheel

TEST(TimerWheel, OneShotFiresOnceAtItsTick) {
  TimerWheel wheel(10, 16);
  int fired = 0;
  wheel.advance(0);
  wheel.schedule(35, [&] { ++fired; });
  wheel.advance(30);
  EXPECT_EQ(fired, 0);
  wheel.advance(40);
  EXPECT_EQ(fired, 1);
  wheel.advance(400);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, PeriodicKeepsCadenceAndCancels) {
  TimerWheel wheel(10, 16);
  int fired = 0;
  wheel.advance(0);
  const auto id = wheel.schedule_every(50, [&] { ++fired; });
  wheel.advance(249);  // 50,100,150,200 -> 4 firings
  EXPECT_EQ(fired, 4);
  wheel.cancel(id);
  wheel.advance(1000);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, LongDelaySurvivesWheelRotations) {
  TimerWheel wheel(10, 8);  // 8 slots of 10 ms: 1 s = many rotations
  int fired = 0;
  wheel.advance(0);
  wheel.schedule(1000, [&] { ++fired; });
  wheel.advance(990);
  EXPECT_EQ(fired, 0);
  wheel.advance(1005);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CallbackMayCancelItself) {
  TimerWheel wheel(10, 16);
  int fired = 0;
  wheel.advance(0);
  TimerWheel::TimerId id = 0;
  id = wheel.schedule_every(20, [&] {
    ++fired;
    wheel.cancel(id);
  });
  wheel.advance(200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 0u);
}

// ------------------------------------------------------- engine loopback

struct TestPeer {
  explicit TestPeer(EngineConfig cfg = {}) : engine(cfg) {
    EngineHandler h;
    h.on_accept = [this](ConnId id) { accepted.push_back(id); };
    h.on_connect = [this](ConnId id, bool ok) {
      connected.push_back({id, ok});
    };
    h.on_message = [this](ConnId id, const net::Message& m) {
      messages.push_back({id, m});
    };
    h.on_close = [this](ConnId id, CloseReason r) {
      closed.push_back({id, r});
    };
    engine.set_handler(std::move(h));
  }
  Engine engine;
  std::vector<ConnId> accepted;
  std::vector<std::pair<ConnId, bool>> connected;
  std::vector<std::pair<ConnId, net::Message>> messages;
  std::vector<std::pair<ConnId, CloseReason>> closed;
};

TEST(Engine, ConnectAcceptAndFramedDelivery) {
  TestPeer a, b;
  ASSERT_TRUE(b.engine.listen());
  const ConnId c = a.engine.connect("127.0.0.1", b.engine.listen_port());
  ASSERT_NE(c, kInvalidConn);
  ASSERT_TRUE(pump_until({&a.engine, &b.engine}, [&] {
    return !a.connected.empty() && !b.accepted.empty();
  }));
  EXPECT_TRUE(a.connected[0].second);

  // One multi-message burst must arrive as individually framed messages.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(a.engine.send(c, make_ping()));
  ASSERT_TRUE(pump_until({&a.engine, &b.engine},
                         [&] { return b.messages.size() >= 3; }));
  EXPECT_EQ(b.messages.size(), 3u);
  EXPECT_EQ(b.messages[0].second.type(), net::PayloadType::kPing);
  EXPECT_EQ(b.engine.messages_in(), 3u);
}

TEST(Engine, ConnectToDeadPortReportsFailure) {
  TestPeer a;
  // Grab a port, then close the listener so nothing is behind it.
  std::uint16_t dead_port = 0;
  {
    Fd probe = make_listener(0);
    ASSERT_TRUE(probe.valid());
    dead_port = bound_port(probe);
  }
  const ConnId c = a.engine.connect("127.0.0.1", dead_port);
  ASSERT_NE(c, kInvalidConn);
  ASSERT_TRUE(
      pump_until({&a.engine}, [&] { return !a.connected.empty(); }));
  EXPECT_FALSE(a.connected[0].second);
  EXPECT_EQ(a.engine.connection_count(), 0u);
}

TEST(Engine, GarbageBytesCloseTheConnectionAsBadFrame) {
  TestPeer a, b;
  ASSERT_TRUE(b.engine.listen());
  // Raw client socket outside any engine: write junk straight at it.
  Fd raw = connect_nonblocking("127.0.0.1", b.engine.listen_port());
  ASSERT_TRUE(raw.valid());
  ASSERT_TRUE(pump_until({&b.engine}, [&] { return !b.accepted.empty(); }));
  std::vector<std::uint8_t> junk(64, 0xEE);  // type byte 0xEE: unknown
  ASSERT_EQ(::write(raw.get(), junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));
  ASSERT_TRUE(pump_until({&b.engine}, [&] { return !b.closed.empty(); }));
  EXPECT_EQ(b.closed[0].second, CloseReason::kBadFrame);
}

TEST(Engine, SlowReaderIsDisconnectedByBackpressure) {
  EngineConfig small;
  small.max_write_queue = 64 * 1024;
  TestPeer a(small), b;
  ASSERT_TRUE(b.engine.listen());
  const ConnId c = a.engine.connect("127.0.0.1", b.engine.listen_port());
  ASSERT_TRUE(pump_until({&a.engine, &b.engine},
                         [&] { return !a.connected.empty(); }));
  ASSERT_TRUE(a.connected[0].second);

  // b never polls from here on: its kernel receive buffer fills, then a's
  // send buffer, then a's user-space queue hits the bound -> kSlowPeer.
  net::Message big;
  big.header.guid.bytes[0] = 1;
  net::Query q;
  q.search = std::string(8000, 'x');
  big.payload = std::move(q);
  bool evicted = false;
  for (int i = 0; i < 4000 && !evicted; ++i) {
    a.engine.send(c, big);
    evicted = !a.closed.empty();
  }
  ASSERT_TRUE(evicted) << "writer never hit the backpressure bound";
  EXPECT_EQ(a.closed[0].second, CloseReason::kSlowPeer);
  EXPECT_FALSE(a.engine.is_open(c));
}

TEST(Engine, HalfOpenPeerIsTimedOut) {
  EngineConfig quick;
  quick.handshake_timeout_ms = 150;
  quick.sweep_period_ms = 25;
  TestPeer b(quick);
  ASSERT_TRUE(b.engine.listen());
  // TCP connects, then says nothing at the application layer.
  Fd mute = connect_nonblocking("127.0.0.1", b.engine.listen_port());
  ASSERT_TRUE(mute.valid());
  ASSERT_TRUE(pump_until({&b.engine}, [&] { return !b.accepted.empty(); }));
  ASSERT_TRUE(pump_until({&b.engine}, [&] { return !b.closed.empty(); },
                         2000));
  EXPECT_EQ(b.closed[0].second, CloseReason::kHandshakeTimeout);
  EXPECT_EQ(b.engine.connection_count(), 0u);
}

// --------------------------------------------------------- node loopback

struct NodePair {
  std::unique_ptr<Node> a, b;
};

NodeConfig quick_node(std::uint32_t index) {
  NodeConfig cfg;
  cfg.index = index;
  cfg.minute_seconds = 0.5;          // accelerated protocol minutes
  cfg.query_rate_per_minute = 0.0;   // tests issue deterministically
  cfg.hit_probability = 0.0;
  cfg.seed = 7 + index;
  return cfg;
}

TEST(Node, HandshakeQueryHitRoundTrip) {
  // b answers every query; a is a bystander neighbour of b that proves
  // forwarding; c issues queries and must get the hit back.
  NodeConfig cb = quick_node(2);
  cb.hit_probability = 1.0;
  Node b(cb);
  ASSERT_TRUE(b.start());

  NodeConfig ca = quick_node(1);
  ca.bootstrap = {b.listen_port()};
  Node a(ca);
  ASSERT_TRUE(a.start());

  NodeConfig cc = quick_node(3);
  cc.bootstrap = {b.listen_port()};
  cc.query_rate_per_minute = 120.0;
  Node c(cc);
  ASSERT_TRUE(c.start());

  auto pump = [&](auto done, int rounds = 1200) {
    for (int i = 0; i < rounds; ++i) {
      if (done()) return true;
      a.poll_once(2);
      b.poll_once(2);
      c.poll_once(2);
    }
    return done();
  };

  // Hello Pongs cross; links come up on both sides.
  ASSERT_TRUE(pump([&] {
    return a.overlay_degree() == 1 && c.overlay_degree() == 1 &&
           b.overlay_degree() == 2;
  })) << "handshake did not complete";
  EXPECT_TRUE(a.police().neighbors() ==
              std::vector<std::uint32_t>{b.self_address()});

  // c's queries flood to b (which forwards them on to a) and b's
  // QueryHits route back along the reverse path to the origin c.
  ASSERT_TRUE(pump([&] { return c.hits_received() > 0; }))
      << "no QueryHit made it back to the origin";
  EXPECT_GT(c.queries_issued(), 0u);
  EXPECT_GT(b.queries_forwarded(), 0u);
}

TEST(Node, AttackerCohortIsCutOnLoopback) {
  // Star: one honest hub, one honest spoke, one attacker spoke. The
  // attacker floods the hub far past the warning threshold; the hub's
  // LocalPolice runs a buddy round and cuts + bans it.
  NodeConfig hub_cfg = quick_node(0);
  hub_cfg.ddp.warning_threshold = 60.0;
  hub_cfg.ddp.cut_threshold = 2.0;
  hub_cfg.ddp.good_issue_bound = 20.0;
  hub_cfg.ddp.collect_timeout_seconds = 6.0;  // 0.1 protocol minutes
  Node hub(hub_cfg);
  ASSERT_TRUE(hub.start());

  NodeConfig spoke_cfg = quick_node(1);
  spoke_cfg.bootstrap = {hub.listen_port()};
  spoke_cfg.query_rate_per_minute = 5.0;
  Node spoke(spoke_cfg);
  ASSERT_TRUE(spoke.start());

  NodeConfig bad_cfg = quick_node(2);
  bad_cfg.bootstrap = {hub.listen_port()};
  bad_cfg.attacker = true;
  bad_cfg.attack_rate_per_minute = 600.0;
  bad_cfg.attack_start_minute = 1.0;
  Node bad(bad_cfg);
  ASSERT_TRUE(bad.start());

  const std::uint32_t bad_addr = bad.self_address();
  auto pump = [&](auto done, int rounds = 6000) {
    for (int i = 0; i < rounds; ++i) {
      if (done()) return true;
      hub.poll_once(1);
      spoke.poll_once(1);
      bad.poll_once(1);
    }
    return done();
  };
  ASSERT_TRUE(pump([&] { return hub.overlay_degree() == 2; }));
  ASSERT_TRUE(pump([&] { return !hub.cuts().empty(); }))
      << "attacker was never cut";
  EXPECT_EQ(hub.cuts()[0].suspect, bad_addr);
  EXPECT_TRUE(hub.is_banned(bad_addr));
  // The honest spoke survives.
  for (const core::Decision& d : hub.cuts()) {
    EXPECT_NE(d.suspect, spoke.self_address());
  }
  // The ban holds: the attacker's redial attempts never restore the link.
  ASSERT_TRUE(pump([&] { return hub.overlay_degree() == 1; }, 500));
}

TEST(Node, DuplicateEchoRevokesForwardCredit) {
  // One node, two script-driven peers. p1 floods a query through the
  // node; when p2 later sends the SAME query back, the node must revoke
  // the Out_query credit it had granted the p2 link (p2 demonstrably
  // already had the query, so the forwarded copy was unrelayable). A dup
  // from the origin link and a dup of a never-forwarded (TTL-exhausted)
  // query must NOT revoke anything.
  NodeConfig cfg = quick_node(0);
  Node node(cfg);
  ASSERT_TRUE(node.start());

  TestPeer p1, p2;
  const ConnId c1 = p1.engine.connect("127.0.0.1", node.listen_port());
  const ConnId c2 = p2.engine.connect("127.0.0.1", node.listen_port());
  ASSERT_NE(c1, kInvalidConn);
  ASSERT_NE(c2, kInvalidConn);

  auto pump = [&](auto done, int rounds = 800) {
    for (int i = 0; i < rounds; ++i) {
      if (done()) return true;
      node.poll_once(2);
      p1.engine.poll_once(2);
      p2.engine.poll_once(2);
    }
    return done();
  };

  const std::uint32_t a1 = net::peer_address(1);
  const std::uint32_t a2 = net::peer_address(2);
  auto hello = [](std::uint32_t ip, std::uint16_t port) {
    net::Message m;
    m.header.ttl = 1;
    net::Pong p;
    p.ip = ip;
    p.port = port;
    p.files_shared = 0;  // overlay link
    m.payload = p;
    return m;
  };
  ASSERT_TRUE(pump([&] {
    return !p1.connected.empty() && !p2.connected.empty();
  }));
  p1.engine.send(c1, hello(a1, 1));
  p2.engine.send(c2, hello(a2, 2));
  ASSERT_TRUE(pump([&] { return node.overlay_degree() == 2; }));

  auto query = [](std::uint8_t tag, std::uint8_t ttl) {
    net::Message m;
    m.header.guid.bytes[0] = tag;
    m.header.guid.bytes[15] = 0x5a;
    m.header.ttl = ttl;
    m.payload = net::Query{0, "echo-test"};
    return m;
  };

  // p1's query floods to p2: one credit on the p2 link.
  p1.engine.send(c1, query(1, 3));
  ASSERT_TRUE(pump([&] {
    const auto lm = node.link_minute(a2);
    return lm.has_value() && lm->out_queries == 1.0;
  })) << "query was not forwarded to p2";

  // The same query coming back from p2 proves the copy was redundant.
  p2.engine.send(c2, query(1, 2));
  ASSERT_TRUE(pump([&] { return node.echo_revocations() == 1; }))
      << "dup from a flooded-to link did not revoke";
  EXPECT_EQ(node.link_minute(a2)->out_queries, 0.0);
  EXPECT_EQ(node.link_minute(a2)->in_queries, 1.0);

  // Dup from the origin link: we never forwarded to it, nothing to revoke.
  p1.engine.send(c1, query(1, 3));
  // TTL-exhausted query is seen but not flooded; its dup revokes nothing.
  p1.engine.send(c1, query(9, 1));
  ASSERT_TRUE(pump([&] {
    const auto lm = node.link_minute(a1);
    return lm.has_value() && lm->in_queries == 3.0;
  }));
  p2.engine.send(c2, query(9, 1));
  ASSERT_TRUE(pump([&] { return node.link_minute(a2)->in_queries == 2.0; }));
  EXPECT_EQ(node.echo_revocations(), 1u);
  EXPECT_EQ(node.link_minute(a2)->out_queries, 0.0);  // clamped, not negative

  // A forward whose TTL dies on arrival earns no relay credit either:
  // p2 gets the copy (raw Out_query counts it) but provably cannot
  // forward it, so the police-facing credit stays flat.
  p1.engine.send(c1, query(7, 2));
  ASSERT_TRUE(pump([&] { return node.link_minute(a1)->in_queries == 4.0; }));
  const std::size_t before = p2.messages.size();
  ASSERT_TRUE(pump([&] { return p2.messages.size() > before; }))
      << "ttl=2 query was not forwarded";
  EXPECT_EQ(node.link_minute(a2)->out_queries, 0.0);
}

TEST(Node, SigtermShutsDownCleanlyWithoutLeakingFds) {
  const std::size_t fds_before = open_fd_count();
  {
    NodeConfig cfg = quick_node(4);
    cfg.query_rate_per_minute = 10.0;
    Node n(cfg);
    ASSERT_TRUE(n.start());
    ASSERT_TRUE(n.engine().install_signal_handlers());
    for (int i = 0; i < 10; ++i) n.poll_once(2);
    ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
    // run() must notice the signal and return instead of looping forever.
    n.run();
    EXPECT_TRUE(n.engine().stopped());
  }
  const std::size_t fds_after = open_fd_count();
  EXPECT_EQ(fds_after, fds_before) << "file descriptors leaked on shutdown";
}

}  // namespace
}  // namespace ddp::netengine
