// Observability-plane tests: trace events and sinks, the JSONL schema
// (write -> parse -> validate round trips), the metrics registry, the
// profilers, the util::log bridge — and the two contracts everything else
// leans on: tracing changes no results, and same seed means the same
// trace, byte for byte.

#include <gtest/gtest.h>

#include <sstream>

#include "experiments/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "obs/trace_read.hpp"
#include "sim/engine.hpp"
#include "util/log.hpp"

namespace ddp::obs {
namespace {

// ------------------------------------------------------------- events

TEST(TraceEvent, FieldCapacityAndNoteTruncation) {
  TraceEvent e;
  for (int i = 0; i < 6; ++i) e.add_field("k", static_cast<double>(i));
  EXPECT_EQ(e.n_fields, TraceEvent::kMaxFields);
  EXPECT_DOUBLE_EQ(e.fields[3].value, 3.0);  // fifth/sixth adds dropped

  const std::string longtext(200, 'x');
  e.set_note(longtext);
  EXPECT_EQ(std::string(e.note).size(), TraceEvent::kNoteCapacity - 1);
}

TEST(TraceEvent, NamesRoundTripThroughLookup) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto type = static_cast<EventType>(i);
    const auto back = event_from_name(event_name(type));
    ASSERT_TRUE(back.has_value()) << event_name(type);
    EXPECT_EQ(*back, type);
  }
  EXPECT_FALSE(event_from_name("no_such_event").has_value());
}

TEST(TraceJsonl, OmitsUnsetPartsAndPrintsIntegersExactly) {
  TraceEvent e;
  e.t = 360.0;
  e.type = EventType::kSuspectCut;
  EXPECT_EQ(to_jsonl(e), "{\"t\":360,\"type\":\"suspect_cut\"}");

  e.a = 17;
  e.b = 42;
  e.add_field("g", 41.5);
  e.add_field("k", 3.0);
  e.set_note("say \"hi\"\n");
  EXPECT_EQ(to_jsonl(e),
            "{\"t\":360,\"type\":\"suspect_cut\",\"a\":17,\"b\":42,"
            "\"kv\":{\"g\":41.5,\"k\":3},\"note\":\"say \\\"hi\\\"\\n\"}");
}

// -------------------------------------------------------------- sinks

TEST(RingBufferSink, WraparoundKeepsTheNewestTail) {
  RingBufferSink ring(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.t = static_cast<double>(i);
    ring.on_event(e);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 10u);
  // Oldest retained is event 6; snapshot comes back oldest-first.
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(snap[i].t, 6.0 + static_cast<double>(i));
    EXPECT_DOUBLE_EQ(ring.at(i).t, 6.0 + static_cast<double>(i));
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 0u);
}

TEST(RingBufferSink, BelowCapacityIsOldestFirstFromZero) {
  RingBufferSink ring(8);
  for (int i = 0; i < 3; ++i) {
    TraceEvent e;
    e.t = static_cast<double>(i);
    ring.on_event(e);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_DOUBLE_EQ(ring.at(0).t, 0.0);
  EXPECT_DOUBLE_EQ(ring.at(2).t, 2.0);
}

TEST(FanoutSink, ForwardsToEverySink) {
  RingBufferSink a(4), b(4);
  FanoutSink fan;
  fan.add(&a);
  fan.add(&b);
  fan.add(nullptr);  // ignored
  TraceEvent e;
  fan.on_event(e);
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(b.total(), 1u);
}

TEST(Tracer, UnboundEmitsNothingAndSkipsArgumentWork) {
  Tracer tracer;
  EXPECT_FALSE(tracer.on());
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return 1.0;
  };
  DDP_TRACE(tracer, EventType::kQueryIssued, 0.0, 1, kInvalidPeer,
            {{"v", expensive()}});
  EXPECT_EQ(evaluations, 0);

  RingBufferSink ring(4);
  tracer.bind(&ring);
  DDP_TRACE(tracer, EventType::kQueryIssued, 0.0, 1, kInvalidPeer,
            {{"v", expensive()}});
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(ring.total(), 1u);
  EXPECT_EQ(ring.at(0).a, 1u);
}

// ------------------------------------------------------- parse/validate

TEST(TraceRead, ParsesWhatToJsonlWrites) {
  TraceEvent e;
  e.t = 360.0;
  e.type = EventType::kIndicatorComputed;
  e.a = 343;
  e.b = 224;
  e.add_field("g", 41.1336);
  e.add_field("responders", 2.0);
  e.set_note("round 3");

  const auto r = parse_trace_line(to_jsonl(e));
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->t, 360.0);
  EXPECT_EQ(r->known, EventType::kIndicatorComputed);
  EXPECT_EQ(r->a, 343u);
  EXPECT_EQ(r->b, 224u);
  ASSERT_TRUE(r->field("g").has_value());
  EXPECT_DOUBLE_EQ(*r->field("g"), 41.1336);
  EXPECT_DOUBLE_EQ(*r->field("responders"), 2.0);
  EXPECT_FALSE(r->field("absent").has_value());
  EXPECT_EQ(r->note, "round 3");
}

TEST(TraceRead, CorruptLinesReportAReason) {
  std::string why;
  EXPECT_FALSE(parse_trace_line("not json at all", &why).has_value());
  EXPECT_FALSE(why.empty());
  EXPECT_FALSE(parse_trace_line("{\"type\":\"log\"", &why).has_value());
  EXPECT_FALSE(parse_trace_line("", &why).has_value());
}

TEST(TraceValidate, AcceptsCleanStreamFlagsBrokenOnes) {
  std::istringstream good(
      "{\"t\":1,\"type\":\"query_issued\",\"a\":0}\n"
      "{\"t\":-1,\"type\":\"log\",\"kv\":{\"level\":2}}\n"  // wall layer
      "{\"t\":2,\"type\":\"query_hit\",\"a\":3,\"b\":0}\n");
  std::vector<SchemaError> errors;
  const auto records = validate_trace(good, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(records.size(), 3u);

  std::istringstream bad(
      "{\"t\":5,\"type\":\"query_issued\"}\n"
      "{\"t\":5,\"type\":\"made_up_event\"}\n"   // unknown type
      "{{{garbage\n"                               // unparseable
      "{\"t\":4,\"type\":\"query_hit\"}\n");      // time went backwards
  errors.clear();
  validate_trace(bad, errors);
  EXPECT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0].line, 2u);
  EXPECT_EQ(errors[1].line, 3u);
  EXPECT_EQ(errors[2].line, 4u);
}

TEST(TraceFilter, MatchesEitherEndpointTypeAndWindow) {
  const auto rec = [](double t, EventType type, PeerId a, PeerId b) {
    TraceEvent e;
    e.t = t;
    e.type = type;
    e.a = a;
    e.b = b;
    auto r = parse_trace_line(to_jsonl(e));
    EXPECT_TRUE(r.has_value());
    return *r;
  };
  TraceFilter f;
  f.peer = 7;
  EXPECT_TRUE(f.matches(rec(1, EventType::kQueryHit, 7, 3)));
  EXPECT_TRUE(f.matches(rec(1, EventType::kQueryHit, 3, 7)));
  EXPECT_FALSE(f.matches(rec(1, EventType::kQueryHit, 3, 4)));
  f.type = EventType::kSuspectCut;
  EXPECT_FALSE(f.matches(rec(1, EventType::kQueryHit, 7, 3)));
  EXPECT_TRUE(f.matches(rec(1, EventType::kSuspectCut, 7, 3)));
  f.t_min = 10.0;
  f.t_max = 20.0;
  EXPECT_FALSE(f.matches(rec(9.9, EventType::kSuspectCut, 7, 3)));
  EXPECT_TRUE(f.matches(rec(10.0, EventType::kSuspectCut, 7, 3)));
  EXPECT_TRUE(f.matches(rec(20.0, EventType::kSuspectCut, 7, 3)));
  EXPECT_FALSE(f.matches(rec(20.1, EventType::kSuspectCut, 7, 3)));
}

TEST(TraceSummarize, DefenseStorylineAndFlagToCutLatency) {
  std::istringstream in(
      "{\"t\":60,\"type\":\"suspect_flagged\",\"a\":5,\"b\":1}\n"
      "{\"t\":60,\"type\":\"suspect_flagged\",\"a\":6,\"b\":1}\n"
      "{\"t\":120,\"type\":\"suspect_flagged\",\"a\":5,\"b\":2}\n"
      "{\"t\":180,\"type\":\"suspect_cut\",\"a\":5,\"b\":1}\n"
      "{\"t\":181,\"type\":\"list_violation\",\"a\":9,\"b\":1}\n"
      "{\"t\":200,\"type\":\"traffic_timeout\",\"a\":1,\"b\":5}\n");
  const auto records = read_trace_records(in);
  const auto s = summarize_trace(records);
  EXPECT_EQ(s.records, 6u);
  EXPECT_EQ(s.suspects_flagged, 2u);  // distinct peers 5 and 6
  EXPECT_EQ(s.suspects_cut, 1u);
  EXPECT_EQ(s.list_violations, 1u);
  EXPECT_EQ(s.control_timeouts, 1u);
  // Peer 5 first flagged at t=60, cut at t=180 -> 2 minutes.
  EXPECT_DOUBLE_EQ(s.mean_flag_to_cut_minutes, 2.0);
  EXPECT_DOUBLE_EQ(s.first_t, 60.0);
  EXPECT_DOUBLE_EQ(s.last_t, 200.0);
}

TEST(TraceSummarize, WallLayerLogsStayOutOfTheTimeRange) {
  // kLog events carry t=-1 (the wall layer has no sim clock); they must be
  // counted separately and never drag first_t below the simulation window.
  std::istringstream in(
      "{\"t\":-1,\"type\":\"log\",\"note\":\"warn: boot\"}\n"
      "{\"t\":30,\"type\":\"suspect_flagged\",\"a\":5,\"b\":1}\n"
      "{\"t\":-1,\"type\":\"log\",\"note\":\"warn: mid-run\"}\n"
      "{\"t\":90,\"type\":\"suspect_cut\",\"a\":5,\"b\":1}\n");
  const auto records = read_trace_records(in);
  const auto s = summarize_trace(records);
  EXPECT_EQ(s.records, 4u);
  EXPECT_EQ(s.wall_logs, 2u);
  EXPECT_DOUBLE_EQ(s.first_t, 30.0);
  EXPECT_DOUBLE_EQ(s.last_t, 90.0);
}

// ------------------------------------------------------------- metrics

TEST(Metrics, RegistrationIsIdempotentAndTyped) {
  MetricsRegistry reg;
  const auto c = reg.counter("flow.traffic");
  EXPECT_EQ(reg.counter("flow.traffic"), c);
  const auto g = reg.gauge("defense.active");
  const auto h = reg.histogram("flow.success", 0.0, 1.0, 10);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.kind(c), MetricKind::kCounter);
  EXPECT_EQ(reg.kind(g), MetricKind::kGauge);
  EXPECT_EQ(reg.kind(h), MetricKind::kHistogram);
  EXPECT_EQ(reg.find("flow.traffic"), c);
  EXPECT_EQ(reg.find("nope"), kInvalidMetric);
}

TEST(Metrics, CounterGaugeHistogramSemantics) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  reg.add(c);
  reg.add(c, 4.0);
  EXPECT_DOUBLE_EQ(reg.value(c), 5.0);

  const auto g = reg.gauge("g");
  reg.set(g, 7.0);
  reg.set(g, 3.0);
  EXPECT_DOUBLE_EQ(reg.value(g), 3.0);

  // 10 bins over [0,1): 0.05 -> bin 0, 0.55 twice -> bin 5; out-of-range
  // mass lands in underflow/overflow, never a regular bin.
  const auto h = reg.histogram("h", 0.0, 1.0, 10);
  reg.observe(h, 0.05);
  reg.observe(h, 0.55);
  reg.observe(h, 0.55);
  reg.observe(h, -1.0);
  reg.observe(h, 2.0);
  const util::Histogram* hist = reg.histogram_data(h);
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->bin_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(hist->bin_weight(5), 2.0);
  EXPECT_DOUBLE_EQ(hist->underflow(), 1.0);
  EXPECT_DOUBLE_EQ(hist->overflow(), 1.0);
  EXPECT_DOUBLE_EQ(reg.value(h), 5.0);  // total weight
  EXPECT_EQ(reg.histogram_data(c), nullptr);
}

TEST(Metrics, SnapshotsBackfillLateMetricsAndExportCsv) {
  MetricsRegistry reg;
  const auto c = reg.counter("flow.msgs");
  reg.add(c, 10.0);
  reg.snapshot_minute(1.0);
  // Registered after the first snapshot: minute-1 row backfills with 0.
  const auto g = reg.gauge("flow.peers");
  reg.add(c, 5.0);
  reg.set(g, 99.0);
  reg.snapshot_minute(2.0);

  ASSERT_EQ(reg.history().size(), 2u);
  // The minute-1 row predates the gauge; the CSV pads it with 0.
  EXPECT_EQ(reg.history()[0].values.size(), 1u);
  EXPECT_EQ(reg.history()[1].values.size(), 2u);

  EXPECT_EQ(reg.to_csv(),
            "minute,flow.msgs,flow.peers\n"
            "1,10,0\n"
            "2,15,99\n");
}

TEST(Metrics, JsonCarriesKindsValuesAndBuckets) {
  MetricsRegistry reg;
  reg.add(reg.counter("c"), 2.0);
  reg.observe(reg.histogram("h", 0.0, 10.0, 2), 3.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"name\":\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

// ----------------------------------------------------------- profilers

TEST(EngineProfiler, AggregatesByCategoryAndComputesThroughput) {
  EngineProfiler p;
  p.record(static_cast<std::uint8_t>(EventCategory::kTransmit), 1000, 5, 0.0);
  p.record(static_cast<std::uint8_t>(EventCategory::kTransmit), 3000, 9, 60.0);
  p.record(static_cast<std::uint8_t>(EventCategory::kService), 500, 2, 120.0);
  p.record(250, 100, 1, 120.0);  // out-of-range category -> generic

  EXPECT_EQ(p.total_events(), 4u);
  EXPECT_EQ(p.stats(EventCategory::kTransmit).events, 2u);
  EXPECT_DOUBLE_EQ(p.stats(EventCategory::kTransmit).mean_us(), 2.0);
  EXPECT_EQ(p.stats(EventCategory::kGeneric).events, 1u);
  EXPECT_EQ(p.max_pending(), 9u);
  EXPECT_DOUBLE_EQ(p.sim_span(), 120.0);
  EXPECT_DOUBLE_EQ(p.events_per_sim_minute(), 2.0);

  p.reset();
  EXPECT_EQ(p.total_events(), 0u);
  EXPECT_DOUBLE_EQ(p.sim_span(), 0.0);
}

TEST(EngineProfiler, CountsExactlyTheDispatchedEngineEvents) {
  sim::Engine engine;
  EngineProfiler p;
  engine.set_profiler(&p);
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(static_cast<double>(i), [&fired] { ++fired; },
                       EventCategory::kTransmit);
  }
  const auto periodic =
      engine.schedule_every(1.0, [] {}, 0.5, EventCategory::kPeriodic);
  engine.run_until(4.0);
  engine.cancel(periodic);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(p.stats(EventCategory::kTransmit).events, 5u);
  EXPECT_EQ(p.stats(EventCategory::kPeriodic).events, 4u);  // 0.5..3.5
  EXPECT_EQ(p.total_events(), 9u);
}

TEST(PhaseProfiler, StableIdsExplicitAddAndScopes) {
  PhaseProfiler p;
  const auto a = p.phase("defense");
  EXPECT_EQ(p.phase("defense"), a);  // same name -> same id
  const auto b = p.phase("churn");
  p.add(a, 5000, 2);
  { PhaseProfiler::Scope scope(p, b); }
  ASSERT_EQ(p.phases().size(), 2u);
  EXPECT_EQ(p.phases()[a].calls, 2u);
  EXPECT_EQ(p.phases()[a].wall_nanos, 5000u);
  EXPECT_EQ(p.phases()[b].calls, 1u);
  EXPECT_GE(p.total_wall_nanos(), 5000u);

  MetricsRegistry reg;
  p.export_to(reg);
  EXPECT_NE(reg.find("profile.defense_ms"), kInvalidMetric);
}

// ---------------------------------------------------------- log bridge

TEST(LogBridge, MirrorsLogLinesAsWallLayerEvents) {
  RingBufferSink ring(8);
  install_log_bridge(&ring);
  util::log(util::LogLevel::kError, "plane down", {{"peer", 17.0}});
  install_log_bridge(nullptr);
  util::log_error("after uninstall");  // must not reach the ring

  ASSERT_EQ(ring.total(), 1u);
  const TraceEvent& e = ring.at(0);
  EXPECT_EQ(e.type, EventType::kLog);
  EXPECT_LT(e.t, 0.0);  // wall layer
  EXPECT_STREQ(e.note, "plane down peer=17");
  ASSERT_EQ(e.n_fields, 1u);
  EXPECT_DOUBLE_EQ(e.fields[0].value,
                   static_cast<double>(util::LogLevel::kError));
}

TEST(LogParse, LevelNamesAnyCaseGarbageRejected) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("WARN"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("Off"), util::LogLevel::kOff);
  EXPECT_FALSE(util::parse_log_level("loud").has_value());
  EXPECT_FALSE(util::parse_log_level("").has_value());
}

// ------------------------------------------------- end-to-end contracts

experiments::ScenarioConfig tiny_config(std::uint64_t seed) {
  auto cfg = experiments::paper_scenario(120, 10, defense::Kind::kDdPolice,
                                         seed);
  cfg.total_minutes = 8.0;
  cfg.attack.start_minute = 2.0;
  cfg.warmup_minutes = 3.0;
  return cfg;
}

TEST(ObsContract, SameSeedProducesByteIdenticalTraces) {
  std::ostringstream first, second;
  {
    auto cfg = tiny_config(11);
    JsonlSink sink(first);
    cfg.obs.trace_sink = &sink;
    experiments::run_scenario(cfg);
  }
  {
    auto cfg = tiny_config(11);
    JsonlSink sink(second);
    cfg.obs.trace_sink = &sink;
    experiments::run_scenario(cfg);
  }
  EXPECT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
}

TEST(ObsContract, TracingAndProfilingChangeNoResults) {
  auto plain_cfg = tiny_config(12);
  const auto plain = experiments::run_scenario(plain_cfg);

  auto observed_cfg = tiny_config(12);
  RingBufferSink ring(1024);
  observed_cfg.obs.trace_sink = &ring;
  observed_cfg.obs.metrics = true;
  observed_cfg.obs.profile = true;
  const auto observed = experiments::run_scenario(observed_cfg);

  EXPECT_GT(ring.total(), 0u);
  ASSERT_NE(observed.metrics_registry, nullptr);
  ASSERT_NE(observed.profile, nullptr);
  EXPECT_EQ(plain.metrics_registry, nullptr);

  // Bit-identical outcomes: observation consumes no randomness.
  EXPECT_EQ(plain.summary.avg_success_rate,
            observed.summary.avg_success_rate);
  EXPECT_EQ(plain.summary.avg_traffic_per_minute,
            observed.summary.avg_traffic_per_minute);
  EXPECT_EQ(plain.summary.avg_response_time,
            observed.summary.avg_response_time);
  EXPECT_EQ(plain.decisions.size(), observed.decisions.size());
  EXPECT_EQ(plain.errors.false_judgment, observed.errors.false_judgment);
  ASSERT_EQ(plain.history.size(), observed.history.size());
  for (std::size_t i = 0; i < plain.history.size(); ++i) {
    EXPECT_EQ(plain.history[i].traffic_messages,
              observed.history[i].traffic_messages);
    EXPECT_EQ(plain.history[i].success_rate,
              observed.history[i].success_rate);
  }
}

TEST(ObsContract, ScenarioTraceIsSchemaValid) {
  auto cfg = tiny_config(13);
  std::ostringstream out;
  JsonlSink sink(out);
  cfg.obs.trace_sink = &sink;
  experiments::run_scenario(cfg);

  std::istringstream in(out.str());
  std::vector<SchemaError> errors;
  const auto records = validate_trace(in, errors);
  for (const auto& e : errors) ADD_FAILURE() << e.line << ": " << e.message;
  EXPECT_GT(records.size(), 100u);

  const auto s = summarize_trace(records);
  EXPECT_GT(s.count(EventType::kMinuteReport), 0u);
  EXPECT_GT(s.count(EventType::kNeighborListSent), 0u);
  EXPECT_EQ(s.unknown_types, 0u);
}

}  // namespace
}  // namespace ddp::obs
