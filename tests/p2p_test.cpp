// Packet-level engine tests: Gnutella flooding semantics (TTL, duplicate
// suppression, inverse-path hits), capacity/queueing behaviour, the link
// monitors, and the Sec. 2.3 testbed replication (Figs. 5-6).

#include <gtest/gtest.h>

#include <cmath>

#include "attack/packet_agent.hpp"
#include "p2p/network.hpp"
#include "p2p/testbed.hpp"
#include "topology/coverage.hpp"
#include "topology/generators.hpp"

namespace ddp::p2p {
namespace {

struct Fixture {
  topology::Graph graph;
  workload::ContentConfig content_cfg;
  std::unique_ptr<workload::ContentModel> content;
  sim::Engine engine;
  P2pConfig cfg;
  std::unique_ptr<PacketNetwork> net;

  explicit Fixture(topology::Graph g, double replicas = 0.0,
                   std::size_t objects = 16)
      : graph(std::move(g)) {
    content_cfg.objects = objects;
    content_cfg.mean_replicas = replicas;
    content = std::make_unique<workload::ContentModel>(content_cfg,
                                                       graph.node_count());
    net = std::make_unique<PacketNetwork>(graph, *content, engine, cfg,
                                          util::Rng(99));
  }
};

topology::Graph line(std::size_t n) {
  topology::Graph g(n);
  for (PeerId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(PacketNetwork, QueryPropagatesAlongLine) {
  Fixture f(line(5));
  f.net->issue_query(0, 3);
  f.engine.run_until(10.0);
  // Every peer received the query exactly once (no duplicates on a line).
  for (PeerId p = 1; p < 5; ++p) EXPECT_EQ(f.net->received_at(p), 1u);
  EXPECT_EQ(f.net->totals().queries_issued, 1u);
  EXPECT_EQ(f.net->totals().messages_sent, 4u);
}

TEST(PacketNetwork, TtlBoundsPropagation) {
  Fixture f(line(10));
  f.cfg.ttl = 3;
  f.net = std::make_unique<PacketNetwork>(f.graph, *f.content, f.engine, f.cfg,
                                          util::Rng(1));
  f.net->issue_query(0, 1);
  f.engine.run_until(10.0);
  EXPECT_EQ(f.net->received_at(3), 1u);
  EXPECT_EQ(f.net->received_at(4), 0u);
}

TEST(PacketNetwork, DuplicateSuppressionOnCycle) {
  topology::Graph g(4);  // square
  for (PeerId i = 0; i < 4; ++i) g.add_edge(i, (i + 1) % 4);
  Fixture f(std::move(g));
  f.net->issue_query(0, 2);
  f.engine.run_until(10.0);
  // The two wavefronts meet: some peer sees the query twice, drops one.
  EXPECT_GE(f.net->totals().duplicates_dropped, 1u);
  // Everyone still processed it exactly once.
  for (PeerId p = 1; p < 4; ++p) EXPECT_GE(f.net->received_at(p), 1u);
}

TEST(PacketNetwork, MessageCountMatchesCoverageProfile) {
  // Cross-validation: on an idle network the engine's transmissions for a
  // single flood equal the exact BFS coverage profile's message count.
  util::Rng rng(7);
  topology::Graph g = topology::paper_topology(60, rng);
  const auto profile = topology::flood_coverage(g, 0, 7);
  Fixture f(std::move(g));
  f.net->issue_query(0, 1);
  f.engine.run_until(30.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(f.net->totals().messages_sent),
                   profile.total_messages());
}

TEST(PacketNetwork, HitRoutesBackAlongInversePath) {
  Fixture f(line(5), /*replicas=*/0.0);
  // Give peer 4 the object deterministically by using a full-replication
  // content model instead.
  workload::ContentConfig cc;
  cc.objects = 4;
  cc.mean_replicas = static_cast<double>(cc.objects);  // ratio 1: everyone
  workload::ContentModel full(cc, 5);
  PacketNetwork net(f.graph, full, f.engine, f.cfg, util::Rng(3));
  const QueryId id = net.issue_query(0, 2);
  f.engine.run_until(20.0);
  ASSERT_EQ(net.outcomes().size(), 1u);
  const auto& out = net.outcomes()[0];
  EXPECT_EQ(out.id, id);
  EXPECT_TRUE(out.responded);
  // Nearest replica is the direct neighbour: ~2 hops round trip plus two
  // service times.
  EXPECT_GT(out.first_response_at, 2 * f.cfg.hop_latency);
  EXPECT_LT(out.first_response_at, 1.0);
  EXPECT_GT(net.totals().hits_delivered, 0u);
}

TEST(PacketNetwork, NoContentMeansNoResponse) {
  Fixture f(line(4), /*replicas=*/0.0);
  f.net->issue_query(0, 1);
  f.engine.run_until(20.0);
  ASSERT_EQ(f.net->outcomes().size(), 1u);
  EXPECT_FALSE(f.net->outcomes()[0].responded);
  EXPECT_EQ(f.net->totals().hits_generated, 0u);
}

TEST(PacketNetwork, CapacityQueueOverflowDrops) {
  Fixture f(line(3));
  f.net->set_capacity(1, 600.0);  // 10/s service at peer 1
  // Blast 100 queries instantly from peer 0; queue_limit default 5000 so
  // shrink it to force overflow.
  f.cfg.queue_limit = 10;
  f.net = std::make_unique<PacketNetwork>(f.graph, *f.content, f.engine, f.cfg,
                                          util::Rng(5));
  f.net->set_capacity(1, 600.0);
  for (int i = 0; i < 100; ++i) f.net->issue_query(0, 1);
  f.engine.run_until(0.5);
  EXPECT_GT(f.net->dropped_at(1), 0u);
  EXPECT_LE(f.net->processed_at(1), 12u);
}

TEST(PacketNetwork, MonitorsCountPerMinuteRates) {
  Fixture f(line(3));
  for (int i = 0; i < 30; ++i) {
    f.engine.schedule_at(i * 1.0, [&f] { f.net->issue_query(0, 1); });
  }
  f.engine.run_until(30.0);
  // Peer 0 sent 30 queries to peer 1 within the minute window.
  EXPECT_NEAR(f.net->monitors().out_per_minute(0, 1, 30.0), 30.0, 1.0);
  // Peer 1 forwarded each to peer 2.
  EXPECT_NEAR(f.net->monitors().out_per_minute(1, 2, 30.0), 30.0, 1.0);
  EXPECT_DOUBLE_EQ(f.net->monitors().out_per_minute(2, 1, 30.0), 0.0);
}

TEST(PacketNetwork, DisconnectStopsFutureTraffic) {
  Fixture f(line(3));
  f.net->issue_query(0, 1);
  f.engine.run_until(5.0);
  EXPECT_EQ(f.net->received_at(2), 1u);
  f.net->disconnect(1, 2);
  f.net->issue_query(0, 2);
  f.engine.run_until(10.0);
  EXPECT_EQ(f.net->received_at(2), 1u);  // unchanged
}

TEST(PacketNetwork, OnQuerySentHookFires) {
  Fixture f(line(3));
  int hooks = 0;
  f.net->on_query_sent = [&hooks](PeerId, PeerId, SimTime) { ++hooks; };
  f.net->issue_query(0, 1);
  f.engine.run_until(5.0);
  EXPECT_EQ(hooks, 2);  // 0->1, 1->2
}

TEST(PacketNetwork, AttackOutcomeLabelled) {
  Fixture f(line(3));
  f.net->set_kind(0, PeerKind::kBad);
  f.net->issue_query(0, 1);
  f.engine.run_until(5.0);
  ASSERT_EQ(f.net->outcomes().size(), 1u);
  EXPECT_TRUE(f.net->outcomes()[0].attack);
  EXPECT_EQ(f.net->totals().attack_queries_issued, 1u);
}

TEST(PacketAgent, SourcesAtConfiguredRate) {
  topology::Graph g = line(3);
  workload::ContentConfig cc;
  cc.objects = 64;
  workload::ContentModel content(cc, 3);
  sim::Engine engine;
  P2pConfig cfg;
  PacketNetwork net(g, content, engine, cfg, util::Rng(8));
  net.set_capacity(1, 1e9);
  net.set_capacity(2, 1e9);
  attack::PacketAgent agent(net, 0, 600.0);  // 10/s
  engine.run_until(10.0);
  EXPECT_NEAR(static_cast<double>(agent.issued()), 100.0, 2.0);
  EXPECT_EQ(net.kind(0), PeerKind::kBad);
}

// ------------------------------------------------------ Sec. 2.3 testbed

TEST(Testbed, ProcessingTracksOfferUntilSaturation) {
  TestbedConfig cfg;
  const auto pt = run_testbed_level(cfg, 8000.0, 1);
  // Below capacity: everything processed, nothing dropped.
  EXPECT_NEAR(pt.processed_per_minute, 8000.0, 200.0);
  EXPECT_LT(pt.drop_rate, 0.01);
}

TEST(Testbed, DropOnsetNearPaperFigure5) {
  TestbedConfig cfg;
  // 14,000/min: still within service + queue headroom for one minute.
  const auto below = run_testbed_level(cfg, 14000.0, 2);
  EXPECT_LT(below.drop_rate, 0.02);
  // 17,000/min: beyond the ~15,000 onset the paper reports.
  const auto above = run_testbed_level(cfg, 17000.0, 2);
  EXPECT_GT(above.drop_rate, 0.05);
}

TEST(Testbed, MaxRateDropNearPaperFigure6) {
  TestbedConfig cfg;
  // Peer A's maximum replay rate (~29,000/min) loses ~47% at peer B.
  const auto pt = run_testbed_level(cfg, 29000.0, 3);
  EXPECT_NEAR(pt.drop_rate, 0.47, 0.07);
  // B's forwarding saturates at its service capacity.
  EXPECT_NEAR(pt.processed_per_minute, cfg.capacity_per_minute, 600.0);
}

TEST(Testbed, SweepIsMonotoneInLoad) {
  TestbedConfig cfg;
  const std::vector<double> rates{1000, 5000, 10000, 15000, 20000, 29000};
  const auto pts = run_testbed_sweep(cfg, rates, 4);
  ASSERT_EQ(pts.size(), rates.size());
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].drop_rate, pts[i - 1].drop_rate - 0.02);
    EXPECT_GE(pts[i].processed_per_minute,
              pts[i - 1].processed_per_minute - 500.0);
  }
  // Processing plateaus at capacity (Fig. 5's flat top).
  EXPECT_LT(pts.back().processed_per_minute, cfg.capacity_per_minute * 1.1);
}

TEST(GuidTable, FindUpsertAndOverwrite) {
  GuidTable t;
  util::Rng rng(7);
  const net::Guid g = net::Guid::random(rng);
  EXPECT_EQ(t.find(g), nullptr);
  t.upsert(g, 3, 1.0);
  ASSERT_NE(t.find(g), nullptr);
  EXPECT_EQ(t.find(g)->from, 3u);
  EXPECT_DOUBLE_EQ(t.find(g)->when, 1.0);
  t.upsert(g, 5, 2.0);  // overwrite, not duplicate
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(g)->from, 5u);
}

TEST(GuidTable, RehashKeepsAllEntries) {
  GuidTable t;
  util::Rng rng(8);
  std::vector<net::Guid> guids;
  for (std::size_t i = 0; i < 300; ++i) {
    guids.push_back(net::Guid::random(rng));
    t.upsert(guids.back(), static_cast<PeerId>(i), static_cast<double>(i));
  }
  EXPECT_EQ(t.size(), 300u);
  for (std::size_t i = 0; i < guids.size(); ++i) {
    ASSERT_NE(t.find(guids[i]), nullptr);
    EXPECT_EQ(t.find(guids[i])->from, static_cast<PeerId>(i));
  }
}

TEST(GuidTable, PruneDropsOldEpochAndAllowsReinsert) {
  // Regression for the epoch-expiry semantics: entries strictly older
  // than the cutoff leave the table, survivors keep their route, and an
  // expired GUID can be inserted again (a late re-flood is forwardable).
  GuidTable t;
  util::Rng rng(9);
  const net::Guid old_g = net::Guid::random(rng);
  const net::Guid new_g = net::Guid::random(rng);
  t.upsert(old_g, 1, 10.0);
  t.upsert(new_g, 2, 100.0);
  t.prune(50.0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(old_g), nullptr);
  ASSERT_NE(t.find(new_g), nullptr);
  EXPECT_EQ(t.find(new_g)->from, 2u);  // inverse-path route survives
  t.upsert(old_g, 4, 120.0);           // expired GUID is insertable again
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(old_g)->from, 4u);
}

TEST(GuidTable, PruneToEmptyThenGrowAgain) {
  GuidTable t;
  util::Rng rng(10);
  std::vector<net::Guid> guids;
  for (std::size_t i = 0; i < 64; ++i) {
    guids.push_back(net::Guid::random(rng));
    t.upsert(guids.back(), 0, 1.0);
  }
  t.prune(2.0);  // everything is older than the cutoff
  EXPECT_EQ(t.size(), 0u);
  for (const auto& g : guids) EXPECT_EQ(t.find(g), nullptr);
  t.upsert(guids.front(), 7, 3.0);
  EXPECT_EQ(t.size(), 1u);
  ASSERT_NE(t.find(guids.front()), nullptr);
}

TEST(PacketNetwork, SeenTableBoundedByEpochExpiry) {
  // A second query wave after the dedup horizon must not stack on top of
  // the first wave's entries: prune_seen compacts the expired epoch, so
  // the total GUID-table population stays bounded by live traffic.
  Fixture f(line(3));
  f.cfg.seen_horizon = 10.0;
  f.net = std::make_unique<PacketNetwork>(f.graph, *f.content, f.engine, f.cfg,
                                          util::Rng(1));
  f.net->issue_query(0, 1);
  f.engine.run_until(5.0);
  const std::uint64_t after_first = f.net->guid_table_size();
  EXPECT_GT(after_first, 0u);
  f.engine.schedule_at(100.0, [&f] { f.net->issue_query(0, 2); });
  f.engine.run_until(120.0);
  // Old entries (age ~100 >> horizon 10) were compacted away as the new
  // wave touched each peer; only the new wave's entries remain.
  EXPECT_EQ(f.net->guid_table_size(), after_first);
}

TEST(PacketNetwork, GuidTableGaugeTracksPopulation) {
  obs::MetricsRegistry reg;
  Fixture f(line(4));
  f.net->set_metrics(&reg);
  const obs::MetricId gauge = reg.find("p2p.guid_table_size");
  ASSERT_NE(gauge, obs::kInvalidMetric);
  EXPECT_DOUBLE_EQ(reg.value(gauge), 0.0);
  f.net->issue_query(0, 1);
  f.engine.run_until(10.0);
  EXPECT_GT(f.net->guid_table_size(), 0u);
  EXPECT_DOUBLE_EQ(reg.value(gauge),
                   static_cast<double>(f.net->guid_table_size()));
}

}  // namespace
}  // namespace ddp::p2p
