// LocalPolice tests: the per-node DD-POLICE judge driven purely by
// messages and minute callbacks. A tiny in-memory transport loops control
// messages between LocalPolice instances so a whole buddy round can run
// without any engine underneath.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/police.hpp"

namespace ddp::core {
namespace {

constexpr std::uint32_t ip(std::uint32_t index) { return 0x0a000000u + index; }

/// Records every outbound message; optionally delivers to registered
/// LocalPolice instances on flush() (not immediately, so tests control
/// interleaving like a real event loop would).
class LoopTransport final : public PoliceTransport {
 public:
  struct ListMsg {
    std::uint32_t from = 0, to = 0;
    std::vector<std::uint32_t> members;
  };
  struct TrafficMsg {
    std::uint32_t to = 0;
    net::NeighborTraffic body;
  };

  explicit LoopTransport(std::uint32_t self) : self_(self) {}

  void send_neighbor_list(std::uint32_t to,
                          const std::vector<std::uint32_t>& members) override {
    lists.push_back({self_, to, members});
  }
  void send_neighbor_traffic(std::uint32_t to,
                             const net::NeighborTraffic& report) override {
    traffic.push_back({to, report});
  }

  std::uint32_t self_;
  std::vector<ListMsg> lists;
  std::vector<TrafficMsg> traffic;
};

/// Deliver all queued messages into their destination nodes, repeatedly,
/// until no transport has anything pending (replies can queue more).
void pump(std::map<std::uint32_t, LocalPolice*> nodes,
          std::map<std::uint32_t, LoopTransport*> wires, double now_minutes) {
  bool moved = true;
  while (moved) {
    moved = false;
    for (auto& [from, wire] : wires) {
      auto lists = std::move(wire->lists);
      wire->lists.clear();
      auto traffic = std::move(wire->traffic);
      wire->traffic.clear();
      for (const auto& m : lists) {
        if (nodes.count(m.to)) {
          nodes[m.to]->on_neighbor_list(m.from, m.members, now_minutes);
          moved = true;
        }
      }
      for (const auto& t : traffic) {
        if (nodes.count(t.to)) {
          nodes[t.to]->on_neighbor_traffic(t.body.source_ip, t.body,
                                           now_minutes);
          moved = true;
        }
      }
    }
  }
}

DdPoliceConfig test_config() {
  DdPoliceConfig cfg;
  cfg.warning_threshold = 500.0;
  cfg.cut_threshold = 5.0;
  cfg.good_issue_bound = 100.0;
  cfg.exchange_period_minutes = 2.0;
  return cfg;
}

// ----------------------------------------------------------- basics

TEST(LocalPolice, PeriodicAdvertisementHonoursPeriod) {
  LoopTransport wire(ip(0));
  LocalPolice police(ip(0), test_config(), wire);
  police.add_neighbor(ip(1));
  police.add_neighbor(ip(2));

  police.on_minute(0.0, {});
  EXPECT_EQ(wire.lists.size(), 2u);  // one per neighbour
  EXPECT_EQ(police.lists_sent(), 2u);

  police.on_minute(1.0, {});
  EXPECT_EQ(wire.lists.size(), 2u);  // period is 2 min: nothing at minute 1

  police.on_minute(2.0, {});
  EXPECT_EQ(wire.lists.size(), 4u);
  EXPECT_EQ(wire.lists.back().members.size(), 2u);
}

TEST(LocalPolice, QuietLinksOpenNoRounds) {
  LoopTransport wire(ip(0));
  LocalPolice police(ip(0), test_config(), wire);
  police.add_neighbor(ip(1));
  police.on_minute(0.0, {{ip(1), 3.0, 2.0}});
  police.on_minute(1.0, {{ip(1), 1.0, 450.0}});  // under warning threshold
  EXPECT_EQ(police.rounds_run(), 0u);
  EXPECT_EQ(police.suspicions(), 0u);
  EXPECT_TRUE(police.decisions().empty());
}

// ------------------------------------------------- full buddy round

// Star around the suspect: judge (node 0) and two other monitors (1, 2)
// all neighbour the attacker (9). The attacker floods everyone; the round
// must converge on a cut at every judge that runs one.
TEST(LocalPolice, FloodingSuspectIsCutAfterFullRound) {
  const std::uint32_t kJudge = ip(0), kM1 = ip(1), kM2 = ip(2), kBad = ip(9);
  LoopTransport w0(kJudge), w1(kM1), w2(kM2);
  DdPoliceConfig cfg = test_config();
  LocalPolice p0(kJudge, cfg, w0), p1(kM1, cfg, w1), p2(kM2, cfg, w2);
  for (LocalPolice* p : {&p0, &p1, &p2}) p->add_neighbor(kBad);

  // The attacker advertised its (truthful) neighbour list to everyone.
  const std::vector<std::uint32_t> bad_list = {kJudge, kM1, kM2};
  p0.on_neighbor_list(kBad, bad_list, 0.0);
  p1.on_neighbor_list(kBad, bad_list, 0.0);
  p2.on_neighbor_list(kBad, bad_list, 0.0);

  std::vector<std::uint32_t> cut;
  p0.set_cut_handler([&](std::uint32_t s, const Decision&) {
    cut.push_back(s);
  });

  std::map<std::uint32_t, LocalPolice*> nodes = {
      {kJudge, &p0}, {kM1, &p1}, {kM2, &p2}};
  std::map<std::uint32_t, LoopTransport*> wires = {
      {kJudge, &w0}, {kM1, &w1}, {kM2, &w2}};

  // Minute 1 completes: attacker sent 2000 q/min to each monitor, nobody
  // forwarded anything into it.
  p0.on_minute(1.0, {{kBad, 0.0, 2000.0}});
  p1.on_minute(1.0, {{kBad, 0.0, 2000.0}});
  p2.on_minute(1.0, {{kBad, 0.0, 2000.0}});
  pump(nodes, wires, 1.01);

  // g = (3*2000 - 2*0) / (3*100) = 20 > CT=5 -> cut at the judge, from
  // member replies alone (round closed early, before any timeout).
  ASSERT_EQ(cut.size(), 1u);
  EXPECT_EQ(cut[0], kBad);
  ASSERT_EQ(p0.decisions().size(), 1u);
  const Decision& d = p0.decisions()[0];
  EXPECT_EQ(d.suspect, kBad);
  EXPECT_EQ(d.judge, kJudge);
  EXPECT_NEAR(d.g, 20.0, 1e-9);
  EXPECT_EQ(d.believed_k, 3u);
  EXPECT_EQ(d.responders, 3u);
}

TEST(LocalPolice, SilentMembersCountAsZeroAfterTimeout) {
  const std::uint32_t kJudge = ip(0), kM1 = ip(1), kBad = ip(9);
  LoopTransport wire(kJudge);
  DdPoliceConfig cfg = test_config();
  cfg.collect_timeout_seconds = 6.0;  // 0.1 protocol minutes
  LocalPolice police(kJudge, cfg, wire);
  police.add_neighbor(kBad);
  police.on_neighbor_list(kBad, {kJudge, kM1}, 0.0);

  std::vector<Decision> verdicts;
  police.set_cut_handler([&](std::uint32_t, const Decision& d) {
    verdicts.push_back(d);
  });

  police.on_minute(1.0, {{kBad, 0.0, 1500.0}});
  EXPECT_EQ(police.rounds_run(), 1u);
  EXPECT_EQ(wire.traffic.size(), 1u);  // request went to the one member
  EXPECT_TRUE(verdicts.empty());      // round still open

  police.on_tick(1.05);
  EXPECT_TRUE(verdicts.empty());  // deadline not reached yet

  // First expiry re-requests the silent member (fault-plane retry) and
  // extends the deadline one collect window instead of judging.
  police.on_tick(1.11);
  EXPECT_TRUE(verdicts.empty());
  EXPECT_EQ(wire.traffic.size(), 2u);

  // Member stays silent through the retry too; Sec. 3.4 now applies:
  // k=2, sum_in = 1500 (judge) + 0 (silent), sum_out = 0.
  // g = (1500 - 1*0) / (2*100) = 7.5 > 5 -> cut.
  police.on_tick(1.25);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_NEAR(verdicts[0].g, 7.5, 1e-9);
  EXPECT_EQ(verdicts[0].responders, 1u);
  EXPECT_EQ(verdicts[0].believed_k, 2u);
}

TEST(LocalPolice, HonestForwarderSurvivesItsRound) {
  // The suspect forwards what it receives: members report matching input,
  // so the indicators stay at forwarding balance and no cut happens.
  const std::uint32_t kJudge = ip(0), kM1 = ip(1), kBusy = ip(9);
  LoopTransport wire(kJudge);
  DdPoliceConfig cfg = test_config();
  cfg.collect_timeout_seconds = 6.0;
  LocalPolice police(kJudge, cfg, wire);
  police.add_neighbor(kBusy);
  police.on_neighbor_list(kBusy, {kJudge, kM1}, 0.0);

  std::vector<Decision> verdicts;
  police.set_cut_handler([&](std::uint32_t, const Decision& d) {
    verdicts.push_back(d);
  });

  // Busy relay: sends us 600/min but the other member fed it 1300/min
  // (and it sends the member 700). Output is fully explained by input.
  police.on_minute(1.0, {{kBusy, 0.0, 600.0}});
  net::NeighborTraffic m1;
  m1.source_ip = kM1;
  m1.suspect_ip = kBusy;
  m1.outgoing_queries = 1300;
  m1.incoming_queries = 700;
  police.on_neighbor_traffic(kM1, m1, 1.02);

  // g = (600+700 - 1*1300) / (2*100) = 0 -> no cut; s likewise.
  EXPECT_TRUE(verdicts.empty());
  EXPECT_EQ(police.rounds_run(), 1u);
  EXPECT_TRUE(police.decisions().empty());
}

// ----------------------------------------------- reply + suppression

TEST(LocalPolice, AnswersARoundAboutItsOwnNeighbor) {
  const std::uint32_t kUs = ip(1), kOther = ip(0), kBad = ip(9);
  LoopTransport wire(kUs);
  LocalPolice police(kUs, test_config(), wire);
  police.add_neighbor(kBad);
  police.on_minute(1.0, {{kBad, 5.0, 1800.0}});
  wire.traffic.clear();  // drop our own round's request traffic

  net::NeighborTraffic req;
  req.source_ip = kOther;
  req.suspect_ip = kBad;
  req.outgoing_queries = 0;
  req.incoming_queries = 2000;
  police.on_neighbor_traffic(kOther, req, 1.5);

  ASSERT_EQ(wire.traffic.size(), 1u);
  EXPECT_EQ(wire.traffic[0].to, kOther);
  EXPECT_EQ(wire.traffic[0].body.source_ip, kUs);
  EXPECT_EQ(wire.traffic[0].body.suspect_ip, kBad);
  EXPECT_EQ(wire.traffic[0].body.outgoing_queries, 5u);
  EXPECT_EQ(wire.traffic[0].body.incoming_queries, 1800u);
}

TEST(LocalPolice, RepliesAreSuppressedWithinTheWindow) {
  const std::uint32_t kUs = ip(1), kOther = ip(0), kBad = ip(9);
  LoopTransport wire(kUs);
  DdPoliceConfig cfg = test_config();
  cfg.suppression_window_seconds = 30.0;  // 0.5 protocol minutes
  LocalPolice police(kUs, cfg, wire);
  police.add_neighbor(kBad);
  police.on_minute(1.0, {{kBad, 0.0, 100.0}});  // quiet: no own round

  net::NeighborTraffic req;
  req.source_ip = kOther;
  req.suspect_ip = kBad;
  police.on_neighbor_traffic(kOther, req, 1.0);
  EXPECT_EQ(wire.traffic.size(), 1u);
  police.on_neighbor_traffic(kOther, req, 1.2);  // inside the window
  EXPECT_EQ(wire.traffic.size(), 1u);
  police.on_neighbor_traffic(kOther, req, 1.6);  // window passed
  EXPECT_EQ(wire.traffic.size(), 2u);
}

TEST(LocalPolice, DoesNotTestifyAboutStrangers) {
  LoopTransport wire(ip(1));
  LocalPolice police(ip(1), test_config(), wire);
  police.add_neighbor(ip(2));
  net::NeighborTraffic req;
  req.source_ip = ip(0);
  req.suspect_ip = ip(9);  // not our neighbour
  police.on_neighbor_traffic(ip(0), req, 1.0);
  EXPECT_TRUE(wire.traffic.empty());
}

TEST(LocalPolice, RemovedNeighborAbandonsItsRound) {
  const std::uint32_t kJudge = ip(0), kBad = ip(9);
  LoopTransport wire(kJudge);
  DdPoliceConfig cfg = test_config();
  cfg.collect_timeout_seconds = 6.0;
  LocalPolice police(kJudge, cfg, wire);
  police.add_neighbor(kBad);
  police.on_neighbor_list(kBad, {kJudge, ip(1)}, 0.0);
  police.on_minute(1.0, {{kBad, 0.0, 2000.0}});
  EXPECT_EQ(police.rounds_run(), 1u);

  police.remove_neighbor(kBad);  // link dropped mid-round
  police.on_tick(5.0);           // deadline long past
  EXPECT_TRUE(police.decisions().empty());
}

TEST(LocalPolice, SelfOnlyGroupStillJudges) {
  // The suspect advertised a list naming only the judge: the believed
  // group degenerates to the judge alone (k=1) and the judge's own
  // monitor carries the verdict.
  const std::uint32_t kJudge = ip(0), kBad = ip(9);
  LoopTransport wire(kJudge);
  LocalPolice police(kJudge, test_config(), wire);
  police.add_neighbor(kBad);
  police.on_neighbor_list(kBad, {kJudge}, 0.0);

  std::vector<Decision> verdicts;
  police.set_cut_handler([&](std::uint32_t, const Decision& d) {
    verdicts.push_back(d);
  });

  // g = 2000 / (1*100) = 20 > 5, decided immediately (nobody to wait for).
  police.on_minute(1.0, {{kBad, 0.0, 2000.0}});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_NEAR(verdicts[0].g, 20.0, 1e-9);
  EXPECT_EQ(verdicts[0].believed_k, 1u);
}

TEST(LocalPolice, CutConfirmationRequiresConsecutiveRounds) {
  // cut_confirmations = 2: one bad round records a pending suspicion;
  // only a second tripping round at least half a minute later fires the
  // verdict. Guards against one-off monitor spikes (a judge descheduled
  // for seconds drains its backlog into a single rolling window).
  const std::uint32_t kJudge = ip(0), kBad = ip(9);
  LoopTransport wire(kJudge);
  DdPoliceConfig cfg = test_config();
  cfg.cut_confirmations = 2;
  LocalPolice police(kJudge, cfg, wire);
  police.add_neighbor(kBad);
  police.on_neighbor_list(kBad, {kJudge}, 0.0);

  std::vector<Decision> verdicts;
  police.set_cut_handler([&](std::uint32_t, const Decision& d) {
    verdicts.push_back(d);
  });

  // First tripping round (g = 20): pending, no verdict.
  police.on_minute(1.0, {{kBad, 0.0, 2000.0}});
  EXPECT_EQ(police.rounds_run(), 1u);
  EXPECT_TRUE(verdicts.empty());

  // A starved judge replaying missed minute timers closes another round
  // milliseconds later over the SAME inflated window — one observation,
  // not two. Must not self-confirm.
  police.on_minute(1.1, {{kBad, 0.0, 2000.0}});
  EXPECT_TRUE(verdicts.empty());

  // The next genuine minute still trips: confirmed, verdict fires.
  police.on_minute(2.0, {{kBad, 0.0, 2000.0}});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_NEAR(verdicts[0].g, 20.0, 1e-9);
}

TEST(LocalPolice, CleanRoundResetsTheConfirmationStreak) {
  const std::uint32_t kJudge = ip(0), kBad = ip(9);
  LoopTransport wire(kJudge);
  DdPoliceConfig cfg = test_config();
  cfg.cut_confirmations = 2;
  cfg.warning_threshold = 100.0;  // open rounds on modest traffic too
  LocalPolice police(kJudge, cfg, wire);
  police.add_neighbor(kBad);
  police.on_neighbor_list(kBad, {kJudge}, 0.0);

  std::vector<Decision> verdicts;
  police.set_cut_handler([&](std::uint32_t, const Decision& d) {
    verdicts.push_back(d);
  });

  police.on_minute(1.0, {{kBad, 0.0, 2000.0}});  // trip #1 (g = 20)
  police.on_minute(2.0, {{kBad, 0.0, 300.0}});   // g = 3 < CT: streak reset
  police.on_minute(3.0, {{kBad, 0.0, 2000.0}});  // trip #1 again
  EXPECT_TRUE(verdicts.empty());
  police.on_minute(4.0, {{kBad, 0.0, 2000.0}});  // trip #2: verdict
  ASSERT_EQ(verdicts.size(), 1u);
}

TEST(LocalPolice, StaleTripDoesNotConfirmALaterOne) {
  // Two trips more than two protocol minutes apart are separate
  // transients, not a persistent flood — the streak restarts.
  const std::uint32_t kJudge = ip(0), kBad = ip(9);
  LoopTransport wire(kJudge);
  DdPoliceConfig cfg = test_config();
  cfg.cut_confirmations = 2;
  LocalPolice police(kJudge, cfg, wire);
  police.add_neighbor(kBad);
  police.on_neighbor_list(kBad, {kJudge}, 0.0);

  std::vector<Decision> verdicts;
  police.set_cut_handler([&](std::uint32_t, const Decision& d) {
    verdicts.push_back(d);
  });

  police.on_minute(1.0, {{kBad, 0.0, 2000.0}});
  EXPECT_TRUE(verdicts.empty());
  police.on_minute(4.0, {{kBad, 0.0, 2000.0}});  // > 2 min later: restart
  EXPECT_TRUE(verdicts.empty());
  police.on_minute(5.0, {{kBad, 0.0, 2000.0}});  // consecutive: verdict
  ASSERT_EQ(verdicts.size(), 1u);
}

TEST(LocalPolice, NoSnapshotDefersTheRound) {
  // A suspect that never advertised a list cannot be judged: the round
  // cannot be addressed, and a churned-in link judged k=1 on the flood
  // it relays would cut an honest forwarder. The warning is held over;
  // the round opens once the advertisement lands.
  const std::uint32_t kJudge = ip(0), kBad = ip(9);
  LoopTransport wire(kJudge);
  LocalPolice police(kJudge, test_config(), wire);
  police.add_neighbor(kBad);

  std::vector<Decision> verdicts;
  police.set_cut_handler([&](std::uint32_t, const Decision& d) {
    verdicts.push_back(d);
  });

  police.on_minute(1.0, {{kBad, 0.0, 2000.0}});
  EXPECT_TRUE(verdicts.empty());
  EXPECT_EQ(police.rounds_run(), 0u);

  police.on_neighbor_list(kBad, {kJudge}, 1.5);
  police.on_minute(2.0, {{kBad, 0.0, 2000.0}});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].believed_k, 1u);
}

TEST(LocalPolice, EarlyReportSeedsTheNextRound) {
  // Another judge's round-opening broadcast can land BEFORE our own
  // minute scan flags the suspect (minute boundaries are per-process).
  // That broadcast is the member's report to our round and is not
  // repeated inside the suppression window — it must be cached and
  // seeded, or the round closes silent-as-zero against an honest peer.
  const std::uint32_t kJudge = ip(0), kBad = ip(9), kM1 = ip(1);
  LoopTransport wire(kJudge);
  LocalPolice police(kJudge, test_config(), wire);
  police.add_neighbor(kBad);
  police.on_neighbor_list(kBad, {kJudge, kM1}, 0.0);

  std::vector<Decision> verdicts;
  police.set_cut_handler([&](std::uint32_t, const Decision& d) {
    verdicts.push_back(d);
  });

  // kM1's broadcast arrives first: it saw the suspect inject 2000 and
  // received none of it back.
  net::NeighborTraffic early;
  early.source_ip = kM1;
  early.suspect_ip = kBad;
  early.outgoing_queries = 0;
  early.incoming_queries = 2000;
  police.on_neighbor_traffic(kM1, early, 0.99);

  // Our scan flags the suspect; the cached report completes the round
  // instantly — no collect wait, no silent-as-zero.
  police.on_minute(1.0, {{kBad, 0.0, 2000.0}});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].responders, 2u);
  // g = ((2000 + 2000) - 1*(0 + 0)) / (2*100) = 20 > CT: the suspect
  // pushed 4000 queries at the group and received none back.
  EXPECT_NEAR(verdicts[0].g, 20.0, 1e-9);
  EXPECT_NEAR(verdicts[0].s, 20.0, 1e-9);
}

TEST(LocalPolice, RoundSuppressionPreventsBackToBackRounds) {
  const std::uint32_t kJudge = ip(0), kBad = ip(9);
  LoopTransport wire(kJudge);
  DdPoliceConfig cfg = test_config();
  cfg.suppression_window_seconds = 90.0;  // 1.5 protocol minutes
  cfg.collect_timeout_seconds = 6.0;
  LocalPolice police(kJudge, cfg, wire);
  police.add_neighbor(kBad);
  police.on_neighbor_list(kBad, {kJudge, ip(1)}, 0.0);

  police.on_minute(1.0, {{kBad, 0.0, 800.0}});
  EXPECT_EQ(police.rounds_run(), 1u);
  police.on_minute(2.0, {{kBad, 0.0, 800.0}});  // within suppression
  EXPECT_EQ(police.rounds_run(), 1u);
  EXPECT_EQ(police.suspicions(), 2u);  // still flagged each minute
  police.on_minute(3.0, {{kBad, 0.0, 800.0}});  // window passed
  EXPECT_EQ(police.rounds_run(), 2u);
}

}  // namespace
}  // namespace ddp::core
