// Property-based tests: randomized invariants that must hold across the
// whole parameter space — codec robustness under fuzzed input, graph
// invariants under random mutation, monitor-window equivalence against a
// brute-force oracle, flow-engine conservation laws, cross-engine
// agreement, and protocol quiescence on honest overlays.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <tuple>

#include "core/ddpolice.hpp"
#include "flow/flow_port.hpp"
#include "experiments/scenario.hpp"
#include "flow/network.hpp"
#include "net/message.hpp"
#include "p2p/network.hpp"
#include "topology/coverage.hpp"
#include "topology/generators.hpp"
#include "util/rate_window.hpp"
#include "util/rng.hpp"

namespace ddp {
namespace {

// ------------------------------------------------------------ codec fuzz

TEST(Property, DecoderNeverCrashesOnRandomBytes) {
  util::Rng rng(1);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> buf(rng.below(64));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
    (void)net::decode(buf);  // must not crash; success is fine but rare
  }
}

TEST(Property, DecoderNeverCrashesOnCorruptedValidMessages) {
  util::Rng rng(2);
  net::Message m;
  m.header.guid = net::Guid::random(rng);
  m.payload = net::Query{0, "corrupt me"};
  const auto clean = net::encode(m);
  for (int trial = 0; trial < 5000; ++trial) {
    auto buf = clean;
    // Flip 1-4 random bytes.
    const std::uint32_t flips = 1 + rng.below(4);
    for (std::uint32_t f = 0; f < flips; ++f) {
      buf[rng.below(static_cast<std::uint32_t>(buf.size()))] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    std::string err;
    const auto out = net::decode(buf, &err);
    if (out) {
      // If it decodes, the framing must be self-consistent.
      EXPECT_EQ(out->header.payload_length + net::kHeaderSize, buf.size());
    }
  }
}

TEST(Property, EncodeDecodeIdentityUnderRandomQueries) {
  util::Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    net::Message m;
    m.header.guid = net::Guid::random(rng);
    m.header.ttl = static_cast<std::uint8_t>(rng.below(16));
    m.header.hops = static_cast<std::uint8_t>(rng.below(16));
    std::string s;
    const std::uint32_t len = rng.below(40);
    for (std::uint32_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.below(26)));
    }
    m.payload = net::Query{static_cast<std::uint16_t>(rng.below(65536)), s};
    const auto out = net::decode(net::encode(m));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(std::get<net::Query>(out->payload).search, s);
    EXPECT_EQ(out->header.ttl, m.header.ttl);
  }
}

// ------------------------------------------------------- graph invariants

TEST(Property, GraphInvariantsUnderRandomMutation) {
  util::Rng rng(4);
  topology::Graph g(40);
  for (int op = 0; op < 20000; ++op) {
    const auto a = static_cast<PeerId>(rng.below(40));
    const auto b = static_cast<PeerId>(rng.below(40));
    switch (rng.below(4)) {
      case 0: g.add_edge(a, b); break;
      case 1: g.remove_edge(a, b); break;
      case 2: g.set_active(a, rng.chance(0.8)); break;
      case 3: g.isolate(a); break;
    }
  }
  // Invariant 1: adjacency is symmetric, loop-free and duplicate-free.
  std::size_t degree_sum = 0;
  for (PeerId u = 0; u < g.node_count(); ++u) {
    std::vector<PeerId> nbrs(g.neighbors(u).begin(), g.neighbors(u).end());
    degree_sum += nbrs.size();
    std::sort(nbrs.begin(), nbrs.end());
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    for (PeerId v : nbrs) {
      EXPECT_NE(v, u);
      EXPECT_TRUE(g.has_edge(v, u));
    }
  }
  // Invariant 2: handshake identity (sum of degrees = 2|E|).
  EXPECT_EQ(degree_sum, 2 * g.edge_count());
  // Invariant 3: inactive nodes have no edges.
  for (PeerId u = 0; u < g.node_count(); ++u) {
    if (!g.is_active(u)) EXPECT_EQ(g.degree(u), 0u);
  }
}

// ----------------------------------------------------- rate-window oracle

TEST(Property, RateWindowMatchesBruteForceOracle) {
  util::Rng rng(5);
  util::RateWindow w(60.0, 60);
  std::deque<std::pair<double, double>> oracle;  // (time, count)
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += rng.exponential(0.7);
    const double c = 1.0 + rng.below(5);
    w.add(t, c);
    oracle.emplace_back(t, c);
    if (i % 50 == 0) {
      // Oracle: bucketized exactly like the window (1 s sub-buckets), so
      // the comparison is exact rather than approximate.
      const auto head = std::floor(t);
      double expect = 0.0;
      for (const auto& [ot, oc] : oracle) {
        if (std::floor(ot) > head - 60.0) expect += oc;
      }
      EXPECT_NEAR(w.total(t), expect, 1e-6) << "at t=" << t;
    }
    while (!oracle.empty() && oracle.front().first < t - 120.0) {
      oracle.pop_front();
    }
  }
}

// ------------------------------------------------- flow conservation laws

class FlowConservationTest
    : public ::testing::TestWithParam<std::tuple<topology::Model, int>> {};

TEST_P(FlowConservationTest, TrafficBoundedAndCountersConsistent) {
  const auto [model, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  topology::GeneratorConfig tc;
  tc.model = model;
  tc.nodes = 150;
  topology::Graph g = topology::generate(tc, rng);
  util::Rng bw_rng = rng.fork("bw");
  const topology::BandwidthMap bw(150, bw_rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 150);
  flow::FlowConfig fc;
  fc.bandwidth_limits = false;
  flow::FlowNetwork net(g, bw, content, fc, rng.fork("flow"));
  for (PeerId a = 0; a < 3; ++a) net.set_kind(a, PeerKind::kBad);
  net.run_minutes(3.0);

  const auto& r = net.last_minute_report();
  // Conservation: a query visits at most every peer once; per-minute
  // traffic cannot exceed (issued queries) x (peers x degree) transmissions.
  const double issued = r.good_issued + r.attack_issued;
  EXPECT_GT(issued, 0.0);
  EXPECT_LT(r.traffic_messages, issued * 150.0 * 7.0);
  // Reach per query is bounded by the population.
  EXPECT_LE(r.reach_per_query, 150.0);
  EXPECT_GE(r.reach_per_query, 1.0);
  // Success and utilization are probabilities.
  EXPECT_GE(r.success_rate, 0.0);
  EXPECT_LE(r.success_rate, 1.0);
  EXPECT_GE(r.mean_utilization, 0.0);
  EXPECT_LE(r.mean_utilization, 1.0);
  // Attack traffic is part of total traffic.
  EXPECT_LE(r.attack_messages, r.traffic_messages + 1e-9);
  // Monitors: what the engine says peer u sent v is non-negative and
  // finite everywhere.
  for (PeerId u = 0; u < 150; ++u) {
    for (PeerId v : net.graph().neighbors(u)) {
      const double q = net.sent_last_minute(u, v);
      EXPECT_GE(q, 0.0);
      EXPECT_LT(q, 1e7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsSeeds, FlowConservationTest,
    ::testing::Combine(::testing::Values(topology::Model::kBarabasiAlbert,
                                         topology::Model::kWaxman,
                                         topology::Model::kErdosRenyi),
                       ::testing::Values(1, 2, 3, 4)));

// -------------------------------------------------- cross-engine agreement

class CrossEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossEngineTest, MessagesPerFloodAgreeOnIdleOverlay) {
  // The packet engine counts a real flood's transmissions; the flow
  // engine's calibrated aggregate must land close for the same topology.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  topology::Graph g = topology::paper_topology(120, rng);

  // Packet engine: one flood, exact message count.
  workload::ContentConfig cc;
  cc.mean_replicas = 0.0;
  const workload::ContentModel content(cc, 120);
  sim::Engine engine;
  p2p::P2pConfig pc;
  p2p::PacketNetwork pnet(g, content, engine, pc, rng.fork("p2p"));
  pnet.issue_query(0, 1);
  engine.run_until(60.0);
  const double packet_msgs = static_cast<double>(pnet.totals().messages_sent);

  // Flow engine: steady state messages per issued query.
  util::Rng rng2(static_cast<std::uint64_t>(GetParam()));
  topology::Graph g2 = topology::paper_topology(120, rng2);
  util::Rng bw_rng = rng2.fork("bw");
  const topology::BandwidthMap bw(120, bw_rng);
  const workload::ContentModel content2(cc, 120);
  flow::FlowConfig fc;
  fc.bandwidth_limits = false;
  flow::FlowNetwork fnet(g2, bw, content2, fc, rng2.fork("flow"));
  fnet.run_minutes(3.0);
  const auto& r = fnet.last_minute_report();
  const double flow_msgs = r.traffic_messages / r.good_issued;

  // Single-origin floods vary with the origin's degree; the flow engine
  // models the origin-averaged flood, so compare within a loose band.
  EXPECT_NEAR(flow_msgs, packet_msgs, packet_msgs * 0.35)
      << "packet=" << packet_msgs << " flow=" << flow_msgs;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineTest, ::testing::Values(1, 2, 3, 4, 5));

// -------------------------------------------------- protocol quiescence

class QuiescenceTest
    : public ::testing::TestWithParam<std::tuple<topology::Model, int>> {};

TEST_P(QuiescenceTest, NoDecisionsOnHonestOverlay) {
  // Property: whatever the topology and seed, an overlay with no
  // compromised peers and no churn never triggers a disconnect.
  const auto [model, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 71 + 5);
  topology::GeneratorConfig tc;
  tc.model = model;
  tc.nodes = 120;
  topology::Graph g = topology::generate(tc, rng);
  util::Rng bw_rng = rng.fork("bw");
  const topology::BandwidthMap bw(120, bw_rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 120);
  flow::FlowConfig fc;
  fc.bandwidth_limits = false;
  flow::FlowNetwork net(g, bw, content, fc, rng.fork("flow"));
  flow::FlowPort port(net);
  core::DdPoliceConfig cfg;
  core::DdPolice police(port, cfg, rng.fork("ddp"));
  net.add_minute_hook([&](double m) { police.on_minute(m); });
  net.run_minutes(6.0);
  EXPECT_TRUE(police.decisions().empty());
}

INSTANTIATE_TEST_SUITE_P(
    ModelsSeeds, QuiescenceTest,
    ::testing::Combine(::testing::Values(topology::Model::kBarabasiAlbert,
                                         topology::Model::kWaxman,
                                         topology::Model::kErdosRenyi),
                       ::testing::Values(1, 2, 3)));

// ------------------------------------------- detection universality

class DetectionTest : public ::testing::TestWithParam<int> {};

TEST_P(DetectionTest, SingleAgentAlwaysIsolated) {
  // Property: a full-rate agent on a static honest overlay is always
  // fully isolated within a few minutes, for any seed.
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 13 + 1);
  topology::Graph g = topology::paper_topology(100, rng);
  util::Rng bw_rng = rng.fork("bw");
  const topology::BandwidthMap bw(100, bw_rng);
  workload::ContentConfig cc;
  const workload::ContentModel content(cc, 100);
  flow::FlowConfig fc;
  fc.bandwidth_limits = false;
  flow::FlowNetwork net(g, bw, content, fc, rng.fork("flow"));
  flow::FlowPort port(net);
  core::DdPoliceConfig cfg;
  core::DdPolice police(port, cfg, rng.fork("ddp"));
  net.add_minute_hook([&](double m) { police.on_minute(m); });
  const auto agent = static_cast<PeerId>(rng.below(100));
  net.set_kind(agent, PeerKind::kBad);
  net.run_minutes(5.0);
  EXPECT_EQ(net.graph().degree(agent), 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------- determinism under fault injection

class FaultDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultDeterminismTest, SameSeedSameFaultsSameRun) {
  // Property: fault injection is part of the deterministic simulation, not
  // noise on top of it. Two runs with identical seed and fault config must
  // agree event for event — same decision log, same fault tallies, same
  // averaged metrics — or fault ablations would not be reproducible.
  const int seed = GetParam();
  experiments::ScenarioConfig cfg = experiments::paper_scenario(
      300, 8, defense::Kind::kDdPolice, static_cast<std::uint64_t>(seed) * 977 + 11);
  cfg.total_minutes = 10.0;
  cfg.fault.channel.drop_probability = 0.2;
  cfg.fault.channel.corrupt_probability = 0.05;
  cfg.fault.channel.delay_jitter_seconds = 3.0;
  cfg.fault.peer.crash_probability_per_minute = 0.002;
  cfg.fault.peer.stall_probability_per_minute = 0.01;

  const auto a = experiments::run_scenario(cfg);
  const auto b = experiments::run_scenario(cfg);

  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].minute, b.decisions[i].minute);
    EXPECT_EQ(a.decisions[i].judge, b.decisions[i].judge);
    EXPECT_EQ(a.decisions[i].suspect, b.decisions[i].suspect);
    EXPECT_EQ(a.decisions[i].g, b.decisions[i].g);
    EXPECT_EQ(a.decisions[i].s, b.decisions[i].s);
  }
  EXPECT_EQ(a.fault_control.timeouts, b.fault_control.timeouts);
  EXPECT_EQ(a.fault_control.retries, b.fault_control.retries);
  EXPECT_EQ(a.fault_control.late_replies, b.fault_control.late_replies);
  EXPECT_EQ(a.fault_control.corrupt_rejects, b.fault_control.corrupt_rejects);
  EXPECT_EQ(a.fault_channel.transfers, b.fault_channel.transfers);
  EXPECT_EQ(a.fault_channel.dropped, b.fault_channel.dropped);
  EXPECT_EQ(a.fault_crashes, b.fault_crashes);
  EXPECT_EQ(a.fault_stalls, b.fault_stalls);
  // Exact double equality on purpose: bit-for-bit reproducibility.
  EXPECT_EQ(a.summary.avg_success_rate, b.summary.avg_success_rate);
  EXPECT_EQ(a.summary.avg_response_time, b.summary.avg_response_time);
  EXPECT_EQ(a.errors.false_negative, b.errors.false_negative);
  EXPECT_EQ(a.errors.false_positive, b.errors.false_positive);
  // And the faults were actually exercised, not vacuously zero.
  EXPECT_GT(a.fault_channel.transfers, 0u);
  EXPECT_GT(a.fault_control.retries, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultDeterminismTest, ::testing::Values(1, 2));

}  // namespace
}  // namespace ddp
