// Regression tests: each of these pins a bug found (and fixed) during
// development, so the failure mode stays dead.

#include <gtest/gtest.h>

#include <memory>

#include "attack/scenario.hpp"
#include "core/ddpolice.hpp"
#include "flow/flow_port.hpp"
#include "flow/network.hpp"
#include "topology/generators.hpp"

namespace ddp {
namespace {

struct MiniWorld {
  topology::Graph graph;
  std::unique_ptr<topology::BandwidthMap> bandwidth;
  std::unique_ptr<workload::ContentModel> content;
  std::unique_ptr<flow::FlowNetwork> net;

  explicit MiniWorld(topology::Graph g, std::uint64_t seed = 7)
      : graph(std::move(g)) {
    util::Rng rng(seed);
    util::Rng bw_rng = rng.fork("bw");
    bandwidth = std::make_unique<topology::BandwidthMap>(graph.node_count(),
                                                         bw_rng);
    workload::ContentConfig cc;
    content = std::make_unique<workload::ContentModel>(cc, graph.node_count());
    flow::FlowConfig fc;
    fc.bandwidth_limits = false;
    net = std::make_unique<flow::FlowNetwork>(graph, *bandwidth, *content, fc,
                                              rng.fork("flow"));
  }
};

// Bug: AttackScenario::start() rejection-sampled forever once every active
// peer was already an agent (agents >= population).
TEST(Regression, AgentSelectionTerminatesWhenOverSubscribed) {
  MiniWorld w(topology::paper_topology(12, *std::make_unique<util::Rng>(1)));
  attack::AttackConfig cfg;
  cfg.agents = 500;  // far more than 12 peers
  cfg.start_minute = 0.0;
  attack::AttackScenario atk(*w.net, cfg, util::Rng(2));
  atk.on_minute(0.0);  // must return, not spin
  EXPECT_LE(atk.agents().size(), 12u);
  EXPECT_GE(atk.agents().size(), 11u);
}

// Bug: Graph::add_edge silently attached edges to deactivated peers,
// breaking the "offline peers hold no connections" invariant.
TEST(Regression, EdgesCannotAttachToInactivePeers) {
  topology::Graph g(3);
  g.set_active(1, false);
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 2));
  EXPECT_TRUE(g.add_edge(0, 2));
  g.set_active(1, true);
  EXPECT_TRUE(g.add_edge(0, 1));
}

// Bug: disconnect() erased the per-link minute counters, so a buddy-group
// round later in the same minute could no longer see the traffic of a
// member that had just been cut — good forwarders lost their alibi.
TEST(Regression, GhostCountersKeepAlibiWithinTheMinute) {
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  MiniWorld w(std::move(g));
  w.net->set_kind(0, PeerKind::kBad);
  w.net->run_minutes(2.0);
  const double alibi = w.net->sent_last_minute(0, 1);
  ASSERT_GT(alibi, 1000.0);
  w.net->disconnect(0, 1);
  EXPECT_DOUBLE_EQ(w.net->sent_last_minute(0, 1), alibi);
}

// Bug: detection applied disconnects while later rounds of the same minute
// were still running, so outcomes depended on hash-map iteration order and
// the r=2 cross-check could find the colluder already isolated. All rounds
// of one minute must see the same topology; the fix defers disconnects.
TEST(Regression, SameMinuteRoundsSeeConsistentTopology) {
  // Star victim m(1) fed by agent(0); judges 2..4; agent has witness 5.
  topology::Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  g.add_edge(0, 5);
  MiniWorld w(std::move(g), 33);
  flow::FlowPort port(*w.net);
  core::DdPoliceConfig cfg;
  cfg.buddy_radius = 2;
  core::DdPolice police(port, cfg, util::Rng(3));
  w.net->add_minute_hook([&](double m) { police.on_minute(m); });
  w.net->set_kind(0, PeerKind::kBad);
  police.set_report_policy(
      [](PeerId reporter, PeerId, const core::TrafficTruth& t)
          -> std::optional<core::TrafficTruth> {
        if (reporter == 0) {
          core::TrafficTruth lie = t;
          lie.out_to_suspect *= 0.02;  // Sec. 3.4 Case 2 deflation
          return lie;
        }
        return t;
      });
  w.net->run_minutes(3.0);
  for (const auto& d : police.decisions()) {
    if (d.judge != 0) {
      EXPECT_EQ(d.suspect, 0u)
          << "honest judge " << d.judge << " wrongly cut " << d.suspect;
    }
  }
}

// Bug: the flow engine's mean-field forwarding over-branched at hubs (a
// hub receives many copies of a flood but is fresh only once), inflating
// reach beyond the population size.
TEST(Regression, FlowReachNeverExceedsPopulation) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    util::Rng rng(seed);
    MiniWorld w(topology::paper_topology(150, rng), seed);
    w.net->run_minutes(3.0);
    EXPECT_LE(w.net->last_minute_report().reach_per_query, 150.0)
        << "seed " << seed;
  }
}

// Bug: a judge whose believed buddy group was just itself (k = 1) convicted
// forwarders on their raw rate — the naive strawman in disguise.
TEST(Regression, LoneJudgeCannotConvict) {
  // Line: issuer-ish heavy peer 0 -> relay 1 -> judge 2, where the judge
  // never learns 1's neighbour list (verification off, no exchange yet at
  // minute 1, snapshot withheld via list policy returning empty).
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  MiniWorld w(std::move(g), 44);
  flow::FlowPort port(*w.net);
  core::DdPoliceConfig cfg;
  cfg.verify_neighbor_lists = false;  // an empty claim would otherwise trip it
  core::DdPolice police(port, cfg, util::Rng(4));
  police.set_list_policy([](PeerId owner, std::vector<PeerId> truth) {
    if (owner == 1) truth.clear();  // nobody learns 1's buddies
    return truth;
  });
  w.net->add_minute_hook([&](double m) { police.on_minute(m); });
  w.net->set_kind(0, PeerKind::kBad);  // 1 relays 0's flood toward 2
  w.net->run_minutes(3.0);
  for (const auto& d : police.decisions()) {
    EXPECT_NE(d.suspect, 1u) << "lone judge convicted the relay";
  }
}

}  // namespace
}  // namespace ddp
