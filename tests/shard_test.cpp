// Sharded-engine determinism tests: span partitioning, the SoA edge-state
// containers behind the hot/cold split, and — the load-bearing property —
// byte-identical simulation output at any worker/shard count, from raw
// FlowNetwork ticks up through full scenario runs and DD-POLICE decisions.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "experiments/scenario.hpp"
#include "flow/network.hpp"
#include "snapshot/snapshot.hpp"
#include "topology/edge_index.hpp"
#include "topology/generators.hpp"
#include "util/spans.hpp"

namespace ddp {
namespace {

// --- span partitioning -----------------------------------------------------

TEST(Spans, EvenPartitionCoversRangeInOrder) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (std::size_t parts : {1u, 2u, 3u, 8u, 61u}) {
      const auto spans = util::make_spans(n, parts);
      ASSERT_EQ(spans.size(), std::min(n, parts));
      std::size_t cursor = 0;
      for (const auto& s : spans) {
        EXPECT_EQ(s.begin, cursor);
        EXPECT_GT(s.end, s.begin);  // never empty
        cursor = s.end;
      }
      EXPECT_EQ(cursor, n);
      // Near-equal: sizes differ by at most one.
      if (!spans.empty()) {
        std::size_t lo = spans[0].size(), hi = spans[0].size();
        for (const auto& s : spans) {
          lo = std::min(lo, s.size());
          hi = std::max(hi, s.size());
        }
        EXPECT_LE(hi - lo, 1u);
      }
    }
  }
}

TEST(Spans, WeightedPartitionBalancesCost) {
  // One heavy hub followed by light peers: the hub gets a span to itself.
  std::vector<std::uint64_t> w(100, 1);
  w[0] = 1000;
  const auto spans = util::make_weighted_spans(w, 4);
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].begin, 0u);
  EXPECT_EQ(spans[0].size(), 1u);  // the hub alone outweighs a quarter
  EXPECT_EQ(spans.back().end, w.size());
  std::size_t cursor = 0;
  for (const auto& s : spans) {
    EXPECT_EQ(s.begin, cursor);
    EXPECT_GT(s.end, s.begin);
    cursor = s.end;
  }
}

TEST(Spans, WeightedDegradesToEvenOnZeroTotal) {
  const std::vector<std::uint64_t> w(12, 0);
  const auto weighted = util::make_weighted_spans(w, 3);
  const auto even = util::make_spans(12, 3);
  ASSERT_EQ(weighted.size(), even.size());
  for (std::size_t i = 0; i < even.size(); ++i) {
    EXPECT_EQ(weighted[i].begin, even[i].begin);
    EXPECT_EQ(weighted[i].end, even[i].end);
  }
}

TEST(Spans, PlanIsAPureFunctionOfInputs) {
  std::vector<std::uint64_t> w(257);
  std::iota(w.begin(), w.end(), 1);
  const auto a = util::make_weighted_spans(w, 7);
  const auto b = util::make_weighted_spans(w, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

// --- SoA edge containers ---------------------------------------------------

TEST(EdgeIndexSoA, RoundTripPreservesParallelArrays) {
  topology::EdgeIndex index;
  // Acquire a handful of slot pairs, then retire one so the round trip
  // covers the free-list and generation bumps.
  const auto [s01, s10] = index.acquire_pair(0, 1);
  const auto [s12, s21] = index.acquire_pair(1, 2);
  const auto [s02, s20] = index.acquire_pair(0, 2);
  index.release(s12);
  const auto [s13, s31] = index.acquire_pair(1, 3);  // recycles retired slots
  (void)s13;
  (void)s31;
  ASSERT_TRUE(index.consistent());

  snapshot::Writer w;
  w.begin_section(1);
  index.save(w);
  w.end_section();
  topology::EdgeIndex loaded;
  {
    snapshot::Reader r = snapshot::Reader::from_bytes(w.finish(0));
    r.begin_section(1);
    loaded.load(r);
    r.end_section();
  }
  ASSERT_TRUE(loaded.consistent());
  ASSERT_EQ(loaded.capacity(), index.capacity());
  for (std::uint32_t s = 0; s < index.capacity(); ++s) {
    EXPECT_EQ(loaded.live(s), index.live(s));
    EXPECT_EQ(loaded.generation(s), index.generation(s));
    if (!index.live(s)) continue;
    EXPECT_EQ(loaded.from(s), index.from(s));
    EXPECT_EQ(loaded.to(s), index.to(s));
    EXPECT_EQ(loaded.reverse(s), index.reverse(s));
  }
  EXPECT_EQ(loaded.live_count(), index.live_count());
  // The SoA accessor views the same generations the scalar reads see.
  const std::uint32_t* gens = loaded.generations();
  for (std::uint32_t s = 0; s < loaded.capacity(); ++s) {
    EXPECT_EQ(gens[s], loaded.generation(s));
  }
  (void)s01;
  (void)s10;
  (void)s21;
  (void)s02;
  (void)s20;
}

TEST(SplitEdgeMap, HotAndColdShareOneGenerationTest) {
  topology::EdgeIndex index;
  struct Hot {
    double cur = 0.0;
  };
  struct Cold {
    double acc = 0.0;
  };
  topology::SplitEdgeMap<Hot, Cold> map(index);
  const auto [suv, svu] = index.acquire_pair(0, 1);
  (void)svu;
  map.touch(suv).cur = 2.5;
  map.cold(suv).acc = 7.0;
  ASSERT_NE(map.find(suv), nullptr);
  EXPECT_EQ(map.find(suv)->cur, 2.5);
  ASSERT_NE(map.find_cold(suv), nullptr);
  EXPECT_EQ(map.find_cold(suv)->acc, 7.0);

  // Re-acquiring the slot bumps the generation: both halves must read as
  // absent, and the next touch resets both.
  index.release(suv);
  const auto [s2, s2r] = index.acquire_pair(0, 2);
  (void)s2r;
  ASSERT_EQ(s2, suv);  // slot recycled
  EXPECT_EQ(map.find(s2), nullptr);
  EXPECT_EQ(map.find_cold(s2), nullptr);
  map.touch(s2);
  EXPECT_EQ(map.find(s2)->cur, 0.0);
  EXPECT_EQ(map.find_cold(s2)->acc, 0.0);

  // erase() retires the entry without touching the index.
  map.touch(s2).cur = 9.0;
  map.erase(s2);
  EXPECT_EQ(map.find(s2), nullptr);
  EXPECT_TRUE(index.live(s2));
}

TEST(SplitEdgeMap, SyncPregrowsToCapacityAndSweepsInSlotOrder) {
  topology::EdgeIndex index;
  struct Hot {
    int v = 0;
  };
  struct Cold {
    int minute = 0;
  };
  topology::SplitEdgeMap<Hot, Cold> map(index);
  std::vector<std::uint32_t> slots;
  for (PeerId p = 1; p <= 6; ++p) {
    slots.push_back(index.acquire_pair(0, p).first);
  }
  map.sync();
  for (const auto s : slots) map.touch(s).v = static_cast<int>(s) + 1;
  std::vector<std::uint32_t> seen;
  map.for_each_cold([&seen](std::uint32_t slot, Cold&) { seen.push_back(slot); });
  // Slot order, ascending — the canonical sweep order rotate_minute uses —
  // and only the touched incarnations appear.
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
  EXPECT_EQ(seen.size(), slots.size());
}

// --- hard-cutoff generator -------------------------------------------------

TEST(HardCutoff, RespectsDegreeCeilingAndStaysConnected) {
  util::Rng rng(77);
  topology::GeneratorConfig cfg;
  cfg.model = topology::Model::kHardCutoff;
  cfg.nodes = 600;
  cfg.ba_links_per_node = 3;
  cfg.hc_cutoff_exponent = 2.0;  // k_c ~ sqrt(600) = 25
  const topology::Graph g = topology::generate(cfg, rng);
  ASSERT_EQ(g.node_count(), 600u);
  const std::size_t kc = 25;  // ceil(600^0.5)
  std::size_t max_deg = 0;
  for (PeerId u = 0; u < g.node_count(); ++u) {
    max_deg = std::max(max_deg, g.neighbors(u).size());
    EXPECT_GE(g.neighbors(u).size(), 1u);
  }
  EXPECT_LE(max_deg, kc);
  // Connected: BFS from 0 reaches everyone.
  std::vector<char> vis(g.node_count(), 0);
  std::vector<PeerId> stack{0};
  vis[0] = 1;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const PeerId u = stack.back();
    stack.pop_back();
    for (PeerId v : g.neighbors(u)) {
      if (!vis[v]) {
        vis[v] = 1;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(reached, g.node_count());
}

TEST(HardCutoff, TighterExponentSuppressesHubsHarder) {
  util::Rng rng1(5);
  util::Rng rng2(5);
  topology::GeneratorConfig cfg;
  cfg.model = topology::Model::kHardCutoff;
  cfg.nodes = 800;
  cfg.ba_links_per_node = 3;
  const auto max_degree = [](const topology::Graph& g) {
    std::size_t m = 0;
    for (PeerId u = 0; u < g.node_count(); ++u) {
      m = std::max(m, g.neighbors(u).size());
    }
    return m;
  };
  cfg.hc_cutoff_exponent = 1.0;  // k_c = n: plain BA
  const std::size_t ba_max = max_degree(topology::generate(cfg, rng1));
  cfg.hc_cutoff_exponent = 3.0;  // k_c ~ n^(1/3) = 10
  const std::size_t cut_max = max_degree(topology::generate(cfg, rng2));
  EXPECT_LE(cut_max, 10u);
  EXPECT_GT(ba_max, cut_max);
}

TEST(HardCutoff, ConfigValidationRejectsBadExponent) {
  experiments::ScenarioConfig cfg;
  cfg.topo.model = topology::Model::kHardCutoff;
  cfg.topo.hc_cutoff_exponent = 0.5;
  EXPECT_FALSE(experiments::validate_config(cfg).empty());
  cfg.topo.hc_cutoff_exponent = 17.0;
  EXPECT_FALSE(experiments::validate_config(cfg).empty());
  cfg.topo.hc_cutoff_exponent = 2.0;
  EXPECT_TRUE(experiments::validate_config(cfg).empty());
}

// --- sharded flow engine determinism --------------------------------------

struct FlowWorld {
  topology::Graph graph;
  std::unique_ptr<topology::BandwidthMap> bandwidth;
  std::unique_ptr<workload::ContentModel> content;
  std::unique_ptr<flow::FlowNetwork> net;

  FlowWorld(std::uint64_t seed, flow::FlowConfig cfg)
      : graph([&] {
          util::Rng trng(seed);
          return topology::paper_topology(400, trng);
        }()) {
    util::Rng rng(seed + 1);
    util::Rng bw_rng = rng.fork("bw");
    bandwidth =
        std::make_unique<topology::BandwidthMap>(graph.node_count(), bw_rng);
    workload::ContentConfig cc;
    cc.objects = 800;
    cc.mean_replicas = 8.0;
    content = std::make_unique<workload::ContentModel>(cc, graph.node_count());
    net = std::make_unique<flow::FlowNetwork>(graph, *bandwidth, *content, cfg,
                                              rng.fork("flow"));
    for (PeerId a = 0; a < 8; ++a) net->set_kind(a, PeerKind::kBad);
  }
};

// Exact (bitwise) equality between two runs' reports; EXPECT_EQ on double
// is exact comparison, which is the whole point of the canonical merge.
void expect_identical_reports(const flow::MinuteReport& a,
                              const flow::MinuteReport& b) {
  EXPECT_EQ(a.traffic_messages, b.traffic_messages);
  EXPECT_EQ(a.attack_messages, b.attack_messages);
  EXPECT_EQ(a.good_issued, b.good_issued);
  EXPECT_EQ(a.attack_issued, b.attack_issued);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.dropped_good, b.dropped_good);
  EXPECT_EQ(a.dropped_attack, b.dropped_attack);
  EXPECT_EQ(a.reach_per_query, b.reach_per_query);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.response_time, b.response_time);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
  EXPECT_EQ(a.transport_lost, b.transport_lost);
}

void run_jobs_invariance(flow::FlowConfig base) {
  base.jobs = 1;
  FlowWorld ref(31, base);
  ref.net->run_minutes(3.0);
  const auto ref_report = ref.net->last_minute_report();
  const double ref_flight = ref.net->total_in_flight();

  for (const unsigned jobs : {2u, 4u}) {
    for (const std::size_t shards : {std::size_t{0}, std::size_t{3},
                                     std::size_t{8}}) {
      flow::FlowConfig cfg = base;
      cfg.jobs = jobs;
      cfg.shards = shards;
      FlowWorld w(31, cfg);
      w.net->run_minutes(3.0);
      expect_identical_reports(w.net->last_minute_report(), ref_report);
      EXPECT_EQ(w.net->total_in_flight(), ref_flight)
          << "jobs=" << jobs << " shards=" << shards;
      for (PeerId p = 0; p < 8; ++p) {
        for (PeerId q : w.graph.neighbors(p)) {
          EXPECT_EQ(w.net->sent_last_minute(p, q),
                    ref.net->sent_last_minute(p, q));
        }
      }
    }
  }
}

TEST(ShardMerge, TickOutputInvariantAcrossJobsAndShards) {
  flow::FlowConfig cfg;
  run_jobs_invariance(cfg);
}

TEST(ShardMerge, FairShareDisciplineInvariant) {
  // kFairShare is the hard case: phase 2 reads cross-shard cur state, so
  // it runs under the extra 2a/2b barrier. Same bit-identity bar.
  flow::FlowConfig cfg;
  cfg.discipline = flow::ServiceDiscipline::kFairShare;
  run_jobs_invariance(cfg);
}

TEST(ShardMerge, ScenarioRunIdenticalIncludingDecisions) {
  // Full stack: sharded tick sweeps AND the sharded DD-POLICE flag scan
  // (300 peers >= the 256-peer gate) must reproduce the serial run's
  // series, decisions and counters exactly.
  experiments::ScenarioConfig cfg =
      experiments::paper_scenario(300, 20, defense::Kind::kDdPolice, 7);
  cfg.total_minutes = 10.0;
  cfg.warmup_minutes = 3.0;
  const auto ref = experiments::run_scenario(cfg);

  cfg.flow.jobs = 4;
  cfg.flow.shards = 5;
  const auto par = experiments::run_scenario(cfg);

  ASSERT_EQ(par.history.size(), ref.history.size());
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    expect_identical_reports(par.history[i], ref.history[i]);
  }
  ASSERT_EQ(par.decisions.size(), ref.decisions.size());
  for (std::size_t i = 0; i < ref.decisions.size(); ++i) {
    EXPECT_EQ(par.decisions[i].minute, ref.decisions[i].minute);
    EXPECT_EQ(par.decisions[i].judge, ref.decisions[i].judge);
    EXPECT_EQ(par.decisions[i].suspect, ref.decisions[i].suspect);
    EXPECT_EQ(par.decisions[i].g, ref.decisions[i].g);
    EXPECT_EQ(par.decisions[i].s, ref.decisions[i].s);
  }
  EXPECT_EQ(par.defense_rounds, ref.defense_rounds);
  EXPECT_EQ(par.defense_traffic_messages, ref.defense_traffic_messages);
  EXPECT_EQ(par.summary.avg_success_rate, ref.summary.avg_success_rate);
  EXPECT_EQ(par.final_active_peers, ref.final_active_peers);
}

TEST(ShardMerge, SnapshotStateIsShardInvariant) {
  // A checkpoint taken by a sharded run must byte-match the serial run's.
  flow::FlowConfig serial_cfg;
  FlowWorld serial(13, serial_cfg);
  serial.net->run_minutes(2.0);

  flow::FlowConfig sharded_cfg;
  sharded_cfg.jobs = 4;
  sharded_cfg.shards = 3;
  FlowWorld sharded(13, sharded_cfg);
  sharded.net->run_minutes(2.0);

  const auto dump = [](const flow::FlowNetwork& net) {
    snapshot::Writer w;
    w.begin_section(1);
    net.save(w);
    w.end_section();
    return w.finish(0);
  };
  EXPECT_EQ(dump(*serial.net), dump(*sharded.net));
}

}  // namespace
}  // namespace ddp
