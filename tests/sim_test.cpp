// Discrete-event engine tests: ordering, deterministic tie-breaking,
// cancellation, periodic tasks and horizon semantics.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace ddp::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(Engine, FifoTieBreakAtEqualTimes) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ClockAdvancesWithEvents) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(7.5, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(e.now(), 7.5);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(10.0, [&] {
    e.schedule_in(5.0, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 15.0);
}

TEST(Engine, PastTimesClampToNow) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(10.0, [&] {
    e.schedule_at(2.0, [&] { seen = e.now(); });  // in the past
  });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 10.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventId id = e.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // idempotent
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.events_executed(), 0u);
}

TEST(Engine, CancelUnknownIdIsFalse) {
  Engine e;
  EXPECT_FALSE(e.cancel(9999));
}

TEST(Engine, RunUntilHorizonInclusive) {
  Engine e;
  std::vector<double> times;
  e.schedule_at(1.0, [&] { times.push_back(1.0); });
  e.schedule_at(2.0, [&] { times.push_back(2.0); });
  e.schedule_at(2.0001, [&] { times.push_back(2.0001); });
  e.run_until(2.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run_until(3.0);
  EXPECT_EQ(times.size(), 3u);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine e;
  e.run_until(42.0);
  EXPECT_DOUBLE_EQ(e.now(), 42.0);
}

TEST(Engine, PeriodicFiresRepeatedly) {
  Engine e;
  int fires = 0;
  e.schedule_every(2.0, [&] { ++fires; });
  e.run_until(9.0);  // fires at 2,4,6,8
  EXPECT_EQ(fires, 4);
}

TEST(Engine, PeriodicWithPhase) {
  Engine e;
  std::vector<double> times;
  e.schedule_every(3.0, [&] { times.push_back(e.now()); }, 0.5);
  e.run_until(7.0);  // 0.5, 3.5, 6.5
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[2], 6.5);
}

TEST(Engine, PeriodicCanCancelItself) {
  Engine e;
  int fires = 0;
  EventId id = 0;
  id = e.schedule_every(1.0, [&] {
    if (++fires == 3) e.cancel(id);
  });
  e.run_until(100.0);
  EXPECT_EQ(fires, 3);
}

TEST(Engine, CancelPeriodicExternally) {
  Engine e;
  int fires = 0;
  const EventId id = e.schedule_every(1.0, [&] { ++fires; });
  e.run_until(2.5);
  EXPECT_EQ(fires, 2);
  EXPECT_TRUE(e.cancel(id));
  e.run_until(10.0);
  EXPECT_EQ(fires, 2);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] {
    ++count;
    e.stop();
  });
  e.schedule_at(2.0, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 1);
  // A later run resumes with the remaining events.
  e.run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, CallbacksMayScheduleCascades) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) e.schedule_in(1.0, recurse);
  };
  e.schedule_at(0.0, recurse);
  e.run();
  EXPECT_EQ(depth, 50);
  EXPECT_DOUBLE_EQ(e.now(), 49.0);
}

TEST(Engine, PendingCount) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, PendingNeverUnderflowsWithLazyCancellation) {
  // Regression: pending() used to be heap size minus cancelled-set size;
  // a cancelled event's heap entry is collected lazily, so the difference
  // could transiently wrap around to a huge value.
  Engine e;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(e.schedule_at(1.0 + i, [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) e.cancel(ids[i]);
  EXPECT_EQ(e.pending(), 8u);
  e.run_until(6.0);  // fires some, collects some cancelled entries
  EXPECT_LE(e.pending(), 8u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  // Cancel after fire / double cancel must not decrement below zero.
  EXPECT_FALSE(e.cancel(ids[1]));
  EXPECT_FALSE(e.cancel(ids[0]));
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, PendingCountsPeriodicsOnceAcrossRepetitions) {
  Engine e;
  const EventId id = e.schedule_every(1.0, [] {});
  EXPECT_EQ(e.pending(), 1u);
  e.run_until(5.5);  // five firings, still armed
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.pending(), 0u);
  e.run_until(10.0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, CancelSelfInsidePeriodicCallbackIsSafe) {
  // Regression: cancelling a periodic from inside its own callback erases
  // the map entry that owns the executing std::function; the engine must
  // move the callback out before invoking it (use-after-free otherwise).
  Engine e;
  auto fires = std::make_shared<int>(0);
  auto id = std::make_shared<EventId>(0);
  *id = e.schedule_every(1.0, [&e, fires, id] {
    if (++*fires == 2) e.cancel(*id);
  });
  e.run_until(50.0);
  EXPECT_EQ(*fires, 2);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_FALSE(e.cancel(*id));  // already gone
}

TEST(Engine, PeriodicCallbackMaySchedule) {
  // Scheduling from inside a periodic callback can rehash the periodic map;
  // the callback must survive (it is restored into the surviving entry).
  Engine e;
  int periodic_fires = 0;
  int oneshot_fires = 0;
  e.schedule_every(1.0, [&] {
    ++periodic_fires;
    for (int i = 0; i < 8; ++i) {
      e.schedule_in(0.25, [&] { ++oneshot_fires; });
    }
  });
  e.run_until(4.5);
  EXPECT_EQ(periodic_fires, 4);
  EXPECT_EQ(oneshot_fires, 32);
  EXPECT_EQ(e.pending(), 1u);  // just the periodic remains
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  // Once a one-shot has fired its slot is freed and the generation bumped;
  // the stale EventId must be rejected, not cancel whatever lives there now.
  Engine e;
  int fires = 0;
  const EventId id = e.schedule_at(1.0, [&] { ++fires; });
  e.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, GenerationReuseStaleIdCannotCancelNewOccupant) {
  // Force slot reuse: fire a one-shot (frees its slot), then schedule a
  // new event that recycles the slot. The stale id shares the slot bits
  // but not the generation, so cancel(stale) must be a no-op.
  Engine e;
  const EventId first = e.schedule_at(1.0, [] {});
  e.run();  // slot freed, generation bumped
  int fires = 0;
  const EventId second = e.schedule_at(2.0, [&] { ++fires; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(e.cancel(first));  // stale generation
  EXPECT_EQ(e.pending(), 1u);     // new occupant untouched
  e.run();
  EXPECT_EQ(fires, 1);
}

TEST(Engine, PeriodicSelfCancelStillCountsAsExecuted) {
  // A periodic that cancels itself mid-callback: that firing still ran, so
  // step() reports progress and events_executed includes it.
  Engine e;
  auto id = std::make_shared<EventId>(0);
  *id = e.schedule_every(1.0, [&e, id] { e.cancel(*id); });
  e.run_until(10.0);
  EXPECT_EQ(e.events_executed(), 1u);  // fired exactly once
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, CancelledHeapEntriesDrainWithoutDispatch) {
  // Cancel is O(1): the heap entry stays behind as a dead record and is
  // reclaimed when it surfaces at the root. None of them may dispatch.
  Engine e;
  int fires = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(
        e.schedule_at(static_cast<double>(i), [&fires] { ++fires; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(e.cancel(ids[i]));
  }
  EXPECT_EQ(e.pending(), 32u);
  e.run();
  EXPECT_EQ(fires, 32);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.events_executed(), 32u);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  std::vector<double> times;
  // Insert in a scrambled order; execution must be sorted.
  for (int i = 0; i < 2000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    e.schedule_at(t, [&times, t] { times.push_back(t); });
  }
  e.run();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.size(), 2000u);
}

}  // namespace
}  // namespace ddp::sim
