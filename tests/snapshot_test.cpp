// Checkpoint/restore tests: snapshot framing integrity (corrupt, truncated
// and mismatched images are rejected, never half-loaded), per-subsystem
// save/load fidelity (save -> load -> save is byte-identical), the engine
// tag-rebinding contract, guid-table probe-layout validation, and the
// end-to-end determinism property — a run checkpointed mid-schedule and
// resumed in a fresh runtime finishes in exactly the state of an
// uninterrupted run.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/ddpolice.hpp"
#include "experiments/runtime.hpp"
#include "fault/plane.hpp"
#include "experiments/scenario.hpp"
#include "flow/network.hpp"
#include "p2p/guid_table.hpp"
#include "sim/engine.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

namespace ddp {
namespace {

using experiments::ScenarioConfig;
using experiments::ScenarioRuntime;
using snapshot::Reader;
using snapshot::SnapshotError;
using snapshot::Writer;

// ---------------------------------------------------------------------------
// Framing

TEST(SnapshotFraming, RoundTripsPrimitives) {
  Writer w;
  w.begin_section(snapshot::section_id("TEST"));
  w.u8(7);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.5);
  w.boolean(true);
  w.str("hello");
  w.end_section();
  const auto bytes = w.finish(0x1122334455667788ull);

  Reader r = Reader::from_bytes(bytes);
  EXPECT_EQ(r.config_digest(), 0x1122334455667788ull);
  r.begin_section(snapshot::section_id("TEST"));
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.5);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  r.end_section();
  EXPECT_EQ(r.sections_remaining(), 0u);
}

TEST(SnapshotFraming, RejectsBadMagicAndVersion) {
  Writer w;
  w.begin_section(snapshot::section_id("TEST"));
  w.u32(1);
  w.end_section();
  const auto bytes = w.finish(1);

  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(Reader::from_bytes(bad_magic), SnapshotError);

  auto bad_version = bytes;
  bad_version[4] ^= 0xff;  // header layout: magic u32, version u32, ...
  EXPECT_THROW(Reader::from_bytes(bad_version), SnapshotError);
}

TEST(SnapshotFraming, RejectsPayloadCorruption) {
  Writer w;
  w.begin_section(snapshot::section_id("TEST"));
  for (int i = 0; i < 64; ++i) w.u64(static_cast<std::uint64_t>(i));
  w.end_section();
  const auto bytes = w.finish(1);

  // Flip one bit in the middle of the payload: the CRC sweep in
  // from_bytes must reject it before any value is readable.
  auto corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW(Reader::from_bytes(corrupt), SnapshotError);
}

TEST(SnapshotFraming, SectionOrderIsEnforced) {
  Writer w;
  w.begin_section(snapshot::section_id("AAAA"));
  w.u32(1);
  w.end_section();
  const auto bytes = w.finish(1);
  Reader r = Reader::from_bytes(bytes);
  EXPECT_THROW(r.begin_section(snapshot::section_id("BBBB")), SnapshotError);
}

TEST(SnapshotFraming, BoundedReadsRejectOversizedCounts) {
  Writer w;
  w.begin_section(snapshot::section_id("TEST"));
  w.size(1000);
  w.end_section();
  const auto bytes = w.finish(1);
  Reader r = Reader::from_bytes(bytes);
  r.begin_section(snapshot::section_id("TEST"));
  EXPECT_THROW(r.size(999), SnapshotError);
}

// ---------------------------------------------------------------------------
// Engine tag rebinding

TEST(EngineSnapshot, TaggedEventsRoundTripAndReplayIdentically) {
  sim::Engine a;
  std::vector<int> fired_a;
  for (int i = 0; i < 5; ++i) {
    a.schedule_at(10.0 + i, [&fired_a, i] { fired_a.push_back(i); },
                  obs::EventCategory::kGeneric, 100 + static_cast<std::uint64_t>(i));
  }
  a.schedule_every(7.0, [&fired_a] { fired_a.push_back(-1); }, -1.0,
                   obs::EventCategory::kPeriodic, 7);
  a.run_until(9.0);  // fires the first periodic tick at t=7

  Writer w;
  w.begin_section(snapshot::section_id("ENG "));
  a.save(w);
  w.end_section();
  const auto bytes = w.finish(0);

  sim::Engine b;
  std::vector<int> fired_b;
  Reader r = Reader::from_bytes(bytes);
  r.begin_section(snapshot::section_id("ENG "));
  b.load(r, [&fired_b](std::uint64_t tag, SimTime, SimTime,
                       obs::EventCategory) -> sim::Engine::Callback {
    if (tag == 7) return [&fired_b] { fired_b.push_back(-1); };
    const int i = static_cast<int>(tag - 100);
    return [&fired_b, i] { fired_b.push_back(i); };
  });
  r.end_section();

  std::string why;
  ASSERT_TRUE(b.consistent(&why)) << why;
  EXPECT_EQ(b.now(), a.now());
  EXPECT_EQ(b.pending(), a.pending());

  fired_a.clear();
  a.run_until(30.0);
  b.run_until(30.0);
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_TRUE(b.consistent(&why)) << why;
}

TEST(EngineSnapshot, TaglessPendingEventIsNotCheckpointable) {
  sim::Engine e;
  e.schedule_at(5.0, [] {});  // default tag 0: not restorable
  Writer w;
  w.begin_section(snapshot::section_id("ENG "));
  EXPECT_THROW(e.save(w), SnapshotError);
}

// ---------------------------------------------------------------------------
// GuidTable probe-layout validation

net::Guid test_guid(std::uint64_t n) {
  net::Guid g{};
  for (int i = 0; i < 8; ++i) {
    g.bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(n >> (8 * i));
  }
  return g;
}

TEST(GuidTableSnapshot, RawSlotsRoundTrip) {
  p2p::GuidTable a;
  for (std::uint64_t n = 0; n < 100; ++n) {
    a.upsert(test_guid(n), static_cast<PeerId>(n % 7), 1.0 + static_cast<double>(n));
  }
  p2p::GuidTable b;
  ASSERT_TRUE(b.restore_raw(a.raw_slots()));
  EXPECT_EQ(b.size(), a.size());
  for (std::uint64_t n = 0; n < 100; ++n) {
    const auto* e = b.find(test_guid(n));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->from, static_cast<PeerId>(n % 7));
    EXPECT_EQ(e->when, 1.0 + static_cast<double>(n));
  }
  // The layout itself — not just the membership — must be preserved, since
  // future prune() compactions re-insert in slot order.
  const auto& sa = a.raw_slots();
  const auto& sb = b.raw_slots();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].used, sb[i].used);
    if (sa[i].used) {
      EXPECT_EQ(sa[i].guid, sb[i].guid);
    }
  }
}

TEST(GuidTableSnapshot, RejectsInvalidLayouts) {
  p2p::GuidTable t;
  // Capacity must be a power of two.
  EXPECT_FALSE(t.restore_raw(std::vector<p2p::GuidTable::Entry>(3)));
  // Load factor must stay at or below 1/2.
  std::vector<p2p::GuidTable::Entry> overfull(4);
  for (int i = 0; i < 3; ++i) {
    overfull[static_cast<std::size_t>(i)] = {test_guid(static_cast<std::uint64_t>(i)),
                                             1.0, 0, true};
  }
  EXPECT_FALSE(t.restore_raw(overfull));
  // Every used entry must be reachable from its hash home by linear
  // probing over used slots: an empty slot inside the chain breaks it.
  std::vector<p2p::GuidTable::Entry> broken(8);
  const net::Guid g = test_guid(42);
  const std::size_t home = net::GuidHash{}(g) & 7u;
  broken[(home + 2) & 7u] = {g, 1.0, 0, true};  // (home+1) left empty
  EXPECT_FALSE(t.restore_raw(broken));
}

// ---------------------------------------------------------------------------
// Scenario runtime: fidelity, determinism, rejection

// Small but hostile configuration: pulsing flooding agents with rejoin,
// churn, control/peer faults, quarantine cuts, adaptive bands, a flash
// crowd, priority shedding and partition repair — every snapshot section
// is exercised.
ScenarioConfig hostile_config(std::uint64_t seed) {
  ScenarioConfig cfg =
      experiments::paper_scenario(150, 15, defense::Kind::kDdPolice, seed);
  cfg.total_minutes = 14.0;
  cfg.warmup_minutes = 4.0;
  cfg.attack.start_minute = 3.0;
  cfg.attack.rejoin = true;
  cfg.attack.sourcing = attack::SourcingStrategy::kPulse;
  cfg.attack.pulse_on_minutes = 2.0;
  cfg.attack.pulse_off_minutes = 3.0;
  cfg.ddpolice.adaptive.enabled = true;
  cfg.flash.enabled = true;
  cfg.flash.start_minute = 6.0;
  cfg.flash.surge_minutes = 3.0;
  cfg.flash.surge_factor = 10.0;
  cfg.flash.participation = 0.2;
  cfg.ddpolice.cut_policy = core::CutPolicy::kQuarantine;
  cfg.ddpolice.quarantine_minutes = 4.0;
  cfg.ddpolice.probation_minutes = 2.0;
  cfg.flow.admission = flow::AdmissionPolicy::kPriority;
  cfg.repair_partitions = true;
  cfg.fault.channel.drop_probability = 0.03;
  cfg.fault.channel.corrupt_probability = 0.01;
  cfg.fault.peer.crash_probability_per_minute = 1e-3;
  cfg.fault.peer.stall_probability_per_minute = 3e-3;
  return cfg;
}

TEST(RuntimeSnapshot, SaveLoadSaveIsByteIdentical) {
  const ScenarioConfig cfg = hostile_config(11);
  ScenarioRuntime a(cfg);
  a.run_to_minute(6.0);
  const auto bytes = a.save();

  ScenarioRuntime b(cfg);
  b.load_bytes(bytes);
  EXPECT_EQ(b.current_minute(), 6.0);
  // Byte-identical re-serialization covers every subsystem's fields at
  // once: any lossy or reordered load shows up as a diff here.
  EXPECT_EQ(b.save(), bytes);
}

TEST(RuntimeSnapshot, CrashMidScheduleResumesToIdenticalState) {
  // Property test over several seeds and checkpoint minutes: interrupting
  // at minute k and resuming in a fresh runtime must land in exactly the
  // uninterrupted end state (final snapshots byte-equal, history equal).
  for (std::uint64_t seed : {3ull, 17ull, 29ull}) {
    const ScenarioConfig cfg = hostile_config(seed);
    const double k = 3.0 + static_cast<double>(seed % 7);

    ScenarioRuntime full(cfg);
    full.run_all();
    const auto full_bytes = full.save();
    const auto full_result = full.result();

    ScenarioRuntime first(cfg);
    first.run_to_minute(k);
    const auto mid = first.save();

    ScenarioRuntime resumed(cfg);
    resumed.load_bytes(mid);
    resumed.run_all();
    EXPECT_EQ(resumed.save(), full_bytes) << "seed " << seed << " k " << k;

    const auto resumed_result = resumed.result();
    ASSERT_EQ(resumed_result.history.size(), full_result.history.size());
    for (std::size_t i = 0; i < full_result.history.size(); ++i) {
      EXPECT_EQ(resumed_result.history[i].success_rate,
                full_result.history[i].success_rate);
      EXPECT_EQ(resumed_result.history[i].traffic_messages,
                full_result.history[i].traffic_messages);
      EXPECT_EQ(resumed_result.history[i].dropped,
                full_result.history[i].dropped);
    }
    EXPECT_EQ(resumed_result.decisions.size(), full_result.decisions.size());
  }
}

TEST(RuntimeSnapshot, RejectsSnapshotFromDifferentConfig) {
  const ScenarioConfig cfg = hostile_config(5);
  ScenarioRuntime a(cfg);
  a.run_to_minute(3.0);
  const auto bytes = a.save();

  ScenarioConfig other = cfg;
  other.flow.attack_target_per_minute *= 2.0;
  ScenarioRuntime b(other);
  try {
    b.load_bytes(bytes);
    FAIL() << "snapshot from a different config was accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("config digest"), std::string::npos);
  }
}

TEST(RuntimeSnapshot, HorizonMayBeExtendedOnRestore) {
  // total_minutes is a run-shape knob, not behaviour: a snapshot taken
  // under minutes=6 must resume under minutes=10 and match a straight
  // 10-minute run.
  ScenarioConfig short_cfg = hostile_config(23);
  short_cfg.total_minutes = 6.0;
  ScenarioRuntime first(short_cfg);
  first.run_all();
  const auto mid = first.save();

  ScenarioConfig long_cfg = hostile_config(23);
  long_cfg.total_minutes = 10.0;
  ScenarioRuntime resumed(long_cfg);
  resumed.load_bytes(mid);
  resumed.run_all();

  ScenarioRuntime full(long_cfg);
  full.run_all();
  EXPECT_EQ(resumed.save(), full.save());
}

TEST(RuntimeSnapshot, FuzzedCorruptionIsAlwaysRejected) {
  const ScenarioConfig cfg = hostile_config(7);
  ScenarioRuntime a(cfg);
  a.run_to_minute(5.0);
  const auto bytes = a.save();

  // Single-byte flips at deterministic positions across the image: every
  // one must throw SnapshotError (the framing CRCs cover payloads; the
  // loader's structural checks cover headers and section ids).
  util::Rng rng(99);
  for (int trial = 0; trial < 48; ++trial) {
    auto mutated = bytes;
    const auto pos = static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(bytes.size()) - 1));
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (trial % 8));
    ScenarioRuntime victim(cfg);
    EXPECT_THROW(victim.load_bytes(mutated), SnapshotError)
        << "flip at byte " << pos << " was accepted";
  }

  // Truncation at deterministic lengths, including 0 and just-short:
  // never accepted, never crashes.
  for (int trial = 0; trial < 24; ++trial) {
    const auto len = static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(bytes.size()) - 1));
    std::vector<std::uint8_t> trunc(bytes.begin(),
                                    bytes.begin() + static_cast<long>(len));
    ScenarioRuntime victim(cfg);
    EXPECT_THROW(victim.load_bytes(trunc), SnapshotError)
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(RuntimeSnapshot, ViewInvariantsHoldAfterRestore) {
  const ScenarioConfig cfg = hostile_config(13);
  ScenarioRuntime a(cfg);
  a.run_to_minute(8.0);
  ScenarioRuntime b(cfg);
  b.load_bytes(a.save());

  const experiments::ScenarioView v = b.view();
  ASSERT_NE(v.net, nullptr);
  std::string why;
  EXPECT_TRUE(v.net->graph().edge_index().consistent(&why)) << why;
  ASSERT_NE(v.fault, nullptr);
  EXPECT_TRUE(v.fault->peers().timeline().consistent(&why)) << why;
  ASSERT_NE(v.ledger, nullptr);
  EXPECT_TRUE(v.ledger->consistent(&why)) << why;
}

}  // namespace
}  // namespace ddp
