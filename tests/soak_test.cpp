// Chaos soak harness tests: a short hostile schedule must run with zero
// invariant violations, the checker must actually report violations when
// given an unachievable floor, and scenario configuration validation must
// reject out-of-range knobs with actionable messages.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "experiments/soak.hpp"

namespace ddp::experiments {
namespace {

TEST(SoakHarness, ShortChaosScheduleRunsClean) {
  // Reduced-scale version of the 8-hour CI soak: rejoining agents, churn,
  // link faults, crash/stall faults, quarantine + priority + repair.
  SoakConfig cfg = chaos_soak_config(150, 15, 30.0, 5);
  const SoakReport rep = run_soak(cfg);
  EXPECT_TRUE(rep.passed()) << soak_verdict(rep);
  EXPECT_GT(rep.checks, 0u);
  // The schedule must actually exercise the ladder, not vacuously pass.
  EXPECT_GT(rep.result.quarantine.quarantines, 0u);
}

TEST(SoakHarness, UnachievableConnectivityFloorIsReported) {
  SoakConfig cfg = chaos_soak_config(100, 10, 15.0, 6);
  cfg.min_honest_connectivity = 1.1;  // > 1: every sweep must fail
  cfg.check_warmup_minutes = 5.0;
  const SoakReport rep = run_soak(cfg);
  EXPECT_FALSE(rep.passed());
  EXPECT_GT(rep.violation_count, 0u);
  ASSERT_FALSE(rep.violations.empty());
  EXPECT_NE(rep.violations.front().what.find("connectivity"),
            std::string::npos);
  EXPECT_NE(soak_verdict(rep).find("FAIL"), std::string::npos);
}

TEST(SoakHarness, ViolationRecordingIsCapped) {
  SoakConfig cfg = chaos_soak_config(100, 10, 20.0, 7);
  cfg.min_honest_connectivity = 1.1;
  cfg.check_warmup_minutes = 1.0;
  cfg.max_recorded_violations = 3;
  const SoakReport rep = run_soak(cfg);
  EXPECT_LE(rep.violations.size(), 3u);
  EXPECT_GT(rep.violation_count, 3u);  // all are still counted
}

// ----------------------------------------------------- config validation

TEST(ScenarioValidate, AcceptsPaperDefaults) {
  EXPECT_EQ(validate_config(
                paper_scenario(100, 10, defense::Kind::kDdPolice, 1)),
            "");
  EXPECT_EQ(validate_config(chaos_soak_config(100, 10, 30.0, 1).scenario),
            "");
}

TEST(ScenarioValidate, RejectsOutOfRangeKnobs) {
  const auto base = paper_scenario(100, 10, defense::Kind::kDdPolice, 1);

  auto cfg = base;
  cfg.flow.ttl = 0;
  EXPECT_NE(validate_config(cfg), "");

  cfg = base;
  cfg.flow.capacity_per_minute = -10.0;
  EXPECT_NE(validate_config(cfg), "");

  cfg = base;
  cfg.fault.channel.drop_probability = 1.5;
  EXPECT_NE(validate_config(cfg), "");

  cfg = base;
  cfg.ddpolice.cut_threshold = 0.0;
  EXPECT_NE(validate_config(cfg), "");

  cfg = base;
  cfg.ddpolice.probation_budget = 2.0;
  EXPECT_NE(validate_config(cfg), "");

  cfg = base;
  cfg.warmup_minutes = cfg.total_minutes + 1.0;
  EXPECT_NE(validate_config(cfg), "");

  cfg = base;
  cfg.attack.agents = cfg.topo.nodes;
  EXPECT_NE(validate_config(cfg), "");
}

TEST(ScenarioValidate, MessagesNameTheOffendingKnob) {
  auto cfg = paper_scenario(100, 10, defense::Kind::kDdPolice, 1);
  cfg.flow.tick_seconds = 0.0;
  EXPECT_NE(validate_config(cfg).find("flow.tick_seconds"),
            std::string::npos);
  cfg = paper_scenario(100, 10, defense::Kind::kDdPolice, 1);
  cfg.ddpolice.quarantine_growth = 0.5;
  EXPECT_NE(validate_config(cfg).find("quarantine_growth"),
            std::string::npos);
}

TEST(ScenarioValidate, RunScenarioThrowsOnInvalidConfig) {
  auto cfg = paper_scenario(60, 5, defense::Kind::kNone, 2);
  cfg.flow.tick_seconds = 0.0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace ddp::experiments
