// Parallel trial runner tests: ThreadPool lifecycle, SweepRunner index
// ordering and exception routing, and the property the whole harness is
// built around — sweep output is jobs-invariant, so `--jobs N` can only
// change wall clock, never a CSV byte or a per-trial trace.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "experiments/figures.hpp"
#include "experiments/scenario.hpp"
#include "experiments/sweep.hpp"
#include "util/thread_pool.hpp"

namespace ddp {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  util::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  }  // ~ThreadPool joins after the queue is empty
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(util::resolve_jobs(3), 3u);
  EXPECT_GE(util::resolve_jobs(0), 1u);  // 0 = one per hardware thread
}

TEST(SweepRunner, ResultsInIndexOrder) {
  experiments::SweepRunner runner(8);
  const std::vector<std::size_t> out =
      runner.map(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, SerialAndParallelResultsIdentical) {
  const auto fn = [](std::size_t i) {
    // Deterministic per-index work with float accumulation: the kind of
    // computation whose result would drift if the harness reordered it.
    double acc = 0.0;
    for (std::size_t k = 1; k <= 1000; ++k) {
      acc += 1.0 / static_cast<double>(i * 1000 + k);
    }
    return acc;
  };
  experiments::SweepRunner serial(1);
  experiments::SweepRunner parallel(8);
  const auto a = serial.map(64, fn);
  const auto b = parallel.map(64, fn);
  EXPECT_EQ(a, b);  // exact: same indices, same serial math per index
}

TEST(SweepRunner, LowestIndexExceptionWins) {
  experiments::SweepRunner runner(8);
  try {
    runner.map(16, [](std::size_t i) -> int {
      if (i == 3) throw std::runtime_error("boom 3");
      if (i == 11) throw std::runtime_error("boom 11");
      return 0;
    });
    FAIL() << "map should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

experiments::Scale tiny_scale(unsigned jobs) {
  experiments::Scale s;
  s.peers = 80;
  s.total_minutes = 10.0;
  s.attack_start = 2.0;
  s.warmup_minutes = 3.0;
  s.trials = 2;
  s.agent_counts = {0, 2};
  s.jobs = jobs;
  return s;
}

TEST(SweepRunner, AgentSweepIsJobsInvariant) {
  // The acceptance property for the whole harness: the fig 9-11 sweep
  // must produce bit-identical rows whether trials run serially or fanned
  // across workers. Reductions run serially in (row, trial) order either
  // way, so every double must match exactly — not approximately.
  const auto serial = experiments::run_agent_sweep(tiny_scale(1), 42);
  const auto fanned = experiments::run_agent_sweep(tiny_scale(4), 42);
  ASSERT_EQ(serial.size(), fanned.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].agents, fanned[i].agents);
    EXPECT_EQ(serial[i].traffic_none, fanned[i].traffic_none);
    EXPECT_EQ(serial[i].traffic_ddp, fanned[i].traffic_ddp);
    EXPECT_EQ(serial[i].traffic_base, fanned[i].traffic_base);
    EXPECT_EQ(serial[i].response_none, fanned[i].response_none);
    EXPECT_EQ(serial[i].response_ddp, fanned[i].response_ddp);
    EXPECT_EQ(serial[i].response_base, fanned[i].response_base);
    EXPECT_EQ(serial[i].success_none, fanned[i].success_none);
    EXPECT_EQ(serial[i].success_ddp, fanned[i].success_ddp);
    EXPECT_EQ(serial[i].success_base, fanned[i].success_base);
  }
}

TEST(SweepRunner, PerTrialTracesAreJobsInvariant) {
  // Beyond the reduced rows: the full per-minute history of each trial
  // must be identical under parallel execution (each trial owns a private
  // engine + RNG seeded only by its index).
  const auto make_config = [](std::uint64_t seed) {
    experiments::ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.topo.nodes = 80;
    cfg.total_minutes = 8.0;
    cfg.warmup_minutes = 2.0;
    cfg.attack.agents = 2;
    cfg.attack.start_minute = 2.0;
    cfg.defense = defense::Kind::kDdPolice;
    return cfg;
  };
  const auto fn = [&make_config](std::size_t i) {
    return experiments::run_scenario(make_config(42 + 1000003ULL * i));
  };
  experiments::SweepRunner serial(1);
  experiments::SweepRunner parallel(4);
  const auto a = serial.map(4, fn);
  const auto b = parallel.map(4, fn);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].history.size(), b[t].history.size());
    for (std::size_t m = 0; m < a[t].history.size(); ++m) {
      EXPECT_EQ(a[t].history[m].success_rate, b[t].history[m].success_rate);
      EXPECT_EQ(a[t].history[m].traffic_messages,
                b[t].history[m].traffic_messages);
      EXPECT_EQ(a[t].history[m].dropped, b[t].history[m].dropped);
    }
    EXPECT_EQ(a[t].decisions.size(), b[t].decisions.size());
    EXPECT_EQ(a[t].summary.avg_success_rate, b[t].summary.avg_success_rate);
  }
}

}  // namespace
}  // namespace ddp
