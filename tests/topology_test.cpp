// Topology substrate tests: dynamic graph invariants, BRITE-replacement
// generators (degree targets, connectivity, heavy tails), the
// measurement-derived bandwidth model, and exact flood-coverage profiles
// on analytically known graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "topology/bandwidth.hpp"
#include "topology/coverage.hpp"
#include "topology/generators.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace ddp::topology {
namespace {

// ---------------------------------------------------------------- graph

TEST(Graph, AddRemoveEdgeInvariants) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate
  EXPECT_FALSE(g.add_edge(1, 0));  // same edge, reversed
  EXPECT_FALSE(g.add_edge(2, 2));  // self loop
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(Graph, NeighborsSpanReflectsEdges) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  auto nbrs = g.neighbors(0);
  std::vector<PeerId> v(nbrs.begin(), nbrs.end());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<PeerId>{1, 2, 3}));
}

TEST(Graph, IsolateRemovesAllEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.isolate(0);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Graph, DeactivationRemovesEdgesAndCounts) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.set_active(1, false);
  EXPECT_FALSE(g.is_active(1));
  EXPECT_EQ(g.active_count(), 2u);
  EXPECT_EQ(g.edge_count(), 0u);
  g.set_active(1, true);
  EXPECT_TRUE(g.is_active(1));
  EXPECT_EQ(g.degree(1), 0u);  // comes back isolated
}

TEST(Graph, AddNodeGrows) {
  Graph g(2);
  const PeerId p = g.add_node();
  EXPECT_EQ(p, 2u);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_TRUE(g.is_active(p));
}

TEST(Graph, HopDistance) {
  Graph g(5);  // line 0-1-2-3-4
  for (PeerId i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  EXPECT_EQ(g.hop_distance(0, 4), 4);
  EXPECT_EQ(g.hop_distance(0, 0), 0);
  EXPECT_EQ(g.hop_distance(4, 0), 4);
  g.set_active(2, false);
  EXPECT_EQ(g.hop_distance(0, 4), -1);
}

TEST(Graph, ConnectivityOverActive) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);  // second component; node 5 isolated (ignored)
  EXPECT_FALSE(g.is_connected_over_active());
  g.add_edge(2, 3);
  EXPECT_TRUE(g.is_connected_over_active());
}

TEST(Graph, RandomActiveNodeRespectsExclusion) {
  Graph g(3);
  g.set_active(0, false);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const PeerId p = g.random_active_node(rng, 1);
    EXPECT_EQ(p, 2u);
  }
}

TEST(Graph, RandomActiveNodeNoneLeft) {
  Graph g(1);
  util::Rng rng(2);
  EXPECT_EQ(g.random_active_node(rng, 0), kInvalidPeer);
  Graph empty(0);
  EXPECT_EQ(empty.random_active_node(rng), kInvalidPeer);
}

TEST(Graph, DegreeBiasedSelectionPrefersHubs) {
  Graph g(11);
  for (PeerId i = 1; i <= 10; ++i) g.add_edge(0, i);  // star: hub 0
  util::Rng rng(3);
  int hub = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (g.random_active_node_by_degree(rng) == 0) ++hub;
  }
  // Hub weight 11 of (11 + 10*2) = ~35%; uniform would be ~9%.
  EXPECT_GT(hub, n / 5);
}

TEST(Graph, DegreeHistogramAndAverage) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto h = g.degree_histogram();
  ASSERT_GE(h.size(), 4u);
  EXPECT_EQ(h[1], 3u);
  EXPECT_EQ(h[3], 1u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
}

// ----------------------------------------------------------- generators

class GeneratorTest
    : public ::testing::TestWithParam<std::tuple<Model, std::size_t, int>> {};

std::string generator_test_name(
    const ::testing::TestParamInfo<std::tuple<Model, std::size_t, int>>& info) {
  const Model model = std::get<0>(info.param);
  const std::size_t nodes = std::get<1>(info.param);
  const int seed = std::get<2>(info.param);
  const std::string name = model == Model::kBarabasiAlbert ? "BA"
                           : model == Model::kWaxman       ? "Waxman"
                                                           : "ER";
  return name + "_" + std::to_string(nodes) + "_s" + std::to_string(seed);
}

TEST_P(GeneratorTest, ConnectedWithTargetDegree) {
  const auto [model, nodes, seed] = GetParam();
  GeneratorConfig cfg;
  cfg.model = model;
  cfg.nodes = nodes;
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const Graph g = generate(cfg, rng);
  EXPECT_EQ(g.node_count(), nodes);
  EXPECT_TRUE(g.is_connected_over_active());
  EXPECT_NEAR(g.average_degree(), 6.0, 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSizes, GeneratorTest,
    ::testing::Combine(::testing::Values(Model::kBarabasiAlbert, Model::kWaxman,
                                         Model::kErdosRenyi),
                       ::testing::Values(std::size_t{200}, std::size_t{1000}),
                       ::testing::Values(1, 2, 3)),
    generator_test_name);

TEST(Generators, PaperTopologyShape) {
  util::Rng rng(7);
  const Graph g = paper_topology(2000, rng);
  EXPECT_EQ(g.node_count(), 2000u);
  EXPECT_TRUE(g.is_connected_over_active());
  // Paper: "most peers have 3 or 4 logical neighbors, and a few peers have
  // tens of direct neighbors. The average number of neighbors ... is 6."
  EXPECT_NEAR(g.average_degree(), 6.0, 0.5);
  const auto hist = g.degree_histogram();
  std::size_t deg3or4 = (hist.size() > 3 ? hist[3] : 0) +
                        (hist.size() > 4 ? hist[4] : 0);
  EXPECT_GT(deg3or4, 2000u / 3);  // the mode
  EXPECT_GT(hist.size(), 20u);    // a heavy tail: someone with tens of links
}

TEST(Generators, BaMinimumDegreeIsM) {
  util::Rng rng(8);
  GeneratorConfig cfg;
  cfg.nodes = 500;
  cfg.ba_links_per_node = 3;
  const Graph g = generate(cfg, rng);
  for (PeerId u = 0; u < g.node_count(); ++u) EXPECT_GE(g.degree(u), 3u);
}

TEST(Generators, BaRejectsDegenerateArguments) {
  util::Rng rng(9);
  GeneratorConfig cfg;
  cfg.nodes = 3;
  cfg.ba_links_per_node = 3;
  EXPECT_THROW(generate(cfg, rng), std::invalid_argument);
  cfg.ba_links_per_node = 0;
  EXPECT_THROW(generate(cfg, rng), std::invalid_argument);
}

TEST(Generators, DeterministicGivenSeed) {
  GeneratorConfig cfg;
  cfg.nodes = 300;
  util::Rng r1(55), r2(55);
  const Graph a = generate(cfg, r1);
  const Graph b = generate(cfg, r2);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (PeerId u = 0; u < a.node_count(); ++u) {
    EXPECT_EQ(a.degree(u), b.degree(u));
  }
}

// ------------------------------------------------------------ bandwidth

TEST(Bandwidth, PaperFractionsHold) {
  util::Rng rng(10);
  const BandwidthMap bw(20000, rng);
  // Paper / Saroiu: 78% downstream >= 1000 Kbps, 22% upstream <= 100 Kbps.
  EXPECT_NEAR(bw.fraction_downstream_at_least(1000.0), 0.78, 0.02);
  EXPECT_NEAR(bw.fraction_upstream_at_most(100.0), 0.22, 0.02);
}

TEST(Bandwidth, LinkCapacityIsBottleneck) {
  util::Rng rng(11);
  BandwidthMap bw(100, rng);
  // Find a modem peer and a cable peer to make the test deterministic.
  PeerId modem = kInvalidPeer, cable = kInvalidPeer;
  for (PeerId p = 0; p < 100; ++p) {
    if (bw.peer_class(p) == BandwidthClass::kModem && modem == kInvalidPeer)
      modem = p;
    if (bw.peer_class(p) == BandwidthClass::kCable && cable == kInvalidPeer)
      cable = p;
  }
  ASSERT_NE(modem, kInvalidPeer);
  ASSERT_NE(cable, kInvalidPeer);
  // modem -> cable bottleneck = modem upstream (56 Kbps).
  EXPECT_DOUBLE_EQ(bw.link_queries_per_minute(modem, cable),
                   kbps_to_queries_per_minute(56.0));
  // cable -> modem bottleneck = modem downstream (56 Kbps).
  EXPECT_DOUBLE_EQ(bw.link_queries_per_minute(cable, modem),
                   kbps_to_queries_per_minute(56.0));
}

TEST(Bandwidth, ConversionMath) {
  // 56 Kbps = 7000 B/s = 420000 B/min; at 60 B/query -> 7000 queries/min.
  EXPECT_NEAR(kbps_to_queries_per_minute(56.0), 7000.0, 1.0);
}

TEST(Bandwidth, ClassTablesAreOrdered) {
  EXPECT_LT(upstream_kbps(BandwidthClass::kModem),
            upstream_kbps(BandwidthClass::kDsl));
  EXPECT_LT(downstream_kbps(BandwidthClass::kDsl),
            downstream_kbps(BandwidthClass::kCable));
  EXPECT_EQ(bandwidth_class_name(BandwidthClass::kT1), "t1");
}

// -------------------------------------------------------------- coverage

TEST(Coverage, LineGraphExact) {
  Graph g(6);  // 0-1-2-3-4-5
  for (PeerId i = 0; i + 1 < 6; ++i) g.add_edge(i, i + 1);
  const auto p = flood_coverage(g, 0, 7);
  // Hop h reaches exactly node h; messages: hop1 = deg(0)=1, others 1 until
  // the line ends (deg-1 of interior nodes = 1).
  EXPECT_DOUBLE_EQ(p.new_nodes[0], 1.0);
  EXPECT_DOUBLE_EQ(p.new_nodes[4], 1.0);
  EXPECT_DOUBLE_EQ(p.new_nodes[5], 0.0);
  EXPECT_DOUBLE_EQ(p.total_reach(), 5.0);
  EXPECT_DOUBLE_EQ(p.messages[0], 1.0);
}

TEST(Coverage, StarGraphExact) {
  Graph g(7);
  for (PeerId i = 1; i < 7; ++i) g.add_edge(0, i);
  const auto from_hub = flood_coverage(g, 0, 7);
  EXPECT_DOUBLE_EQ(from_hub.new_nodes[0], 6.0);
  EXPECT_DOUBLE_EQ(from_hub.total_reach(), 6.0);
  const auto from_leaf = flood_coverage(g, 1, 7);
  EXPECT_DOUBLE_EQ(from_leaf.new_nodes[0], 1.0);  // the hub
  EXPECT_DOUBLE_EQ(from_leaf.new_nodes[1], 5.0);  // other leaves
  EXPECT_DOUBLE_EQ(from_leaf.messages[1], 5.0);   // hub fans to deg-1
}

TEST(Coverage, RingCountsDuplicates) {
  Graph g(6);  // cycle
  for (PeerId i = 0; i < 6; ++i) g.add_edge(i, (i + 1) % 6);
  const auto p = flood_coverage(g, 0, 7);
  EXPECT_DOUBLE_EQ(p.total_reach(), 5.0);
  // Two wavefronts meet: total messages exceed total fresh nodes.
  EXPECT_GT(p.total_messages(), p.total_reach());
}

TEST(Coverage, TtlLimitsReach) {
  Graph g(10);  // line
  for (PeerId i = 0; i + 1 < 10; ++i) g.add_edge(i, i + 1);
  const auto p = flood_coverage(g, 0, 3);
  EXPECT_DOUBLE_EQ(p.total_reach(), 3.0);
}

TEST(Coverage, FreshFractionFirstHopIsOne) {
  util::Rng rng(12);
  const Graph g = paper_topology(500, rng);
  const auto p = flood_coverage(g, 0, 7);
  EXPECT_DOUBLE_EQ(p.fresh_fraction(1), 1.0);
  for (std::size_t h = 1; h <= 7; ++h) {
    EXPECT_GE(p.fresh_fraction(h), 0.0);
    EXPECT_LE(p.fresh_fraction(h), 1.0);
  }
}

TEST(Coverage, FullCoverageOnWellConnectedGraph) {
  util::Rng rng(13);
  const Graph g = paper_topology(300, rng);
  const auto p = flood_coverage(g, 5, 7);
  // TTL-7 floods blanket a 300-node BA overlay (the paper cites [25]: 95%
  // of node pairs are within 7 hops).
  EXPECT_GT(p.total_reach(), 290.0);
}

TEST(Coverage, CumulativeReachMonotone) {
  util::Rng rng(14);
  const Graph g = paper_topology(400, rng);
  const auto p = flood_coverage(g, 1, 7);
  for (std::size_t h = 1; h <= 7; ++h) {
    EXPECT_GE(p.cumulative_reach(h), p.cumulative_reach(h - 1));
  }
  EXPECT_DOUBLE_EQ(p.cumulative_reach(7), p.total_reach());
}

TEST(Coverage, AverageProfileSane) {
  util::Rng rng(15);
  const Graph g = paper_topology(400, rng);
  const auto avg = average_coverage(g, 7, 50, rng);
  EXPECT_GT(avg.total_reach(), 350.0);
  EXPECT_LT(avg.total_reach(), 400.0);
  EXPECT_GT(avg.total_messages(), avg.total_reach());
}

TEST(Coverage, InactiveOriginYieldsEmptyProfile) {
  Graph g(3);
  g.add_edge(0, 1);
  g.set_active(0, false);
  const auto p = flood_coverage(g, 0, 7);
  EXPECT_DOUBLE_EQ(p.total_reach(), 0.0);
}

TEST(Coverage, InactiveNodesBlockPropagation) {
  Graph g(5);  // line
  for (PeerId i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  g.set_active(2, false);  // also removes its edges
  const auto p = flood_coverage(g, 0, 7);
  EXPECT_DOUBLE_EQ(p.total_reach(), 1.0);  // only node 1 reachable
}


TEST(Generators, TwoTierShape) {
  util::Rng rng(21);
  TwoTierConfig cfg;
  cfg.nodes = 500;
  cfg.ultrapeers = 80;
  cfg.leaf_links = 2;
  const Graph g = two_tier_topology(cfg, rng);
  EXPECT_EQ(g.node_count(), 500u);
  EXPECT_TRUE(g.is_connected_over_active());
  // Core is well-connected; leaves hold exactly leaf_links connections,
  // all of them into the core.
  for (PeerId u = 0; u < 80; ++u) EXPECT_GE(g.degree(u), 3u);
  for (PeerId leaf = 80; leaf < 500; ++leaf) {
    EXPECT_EQ(g.degree(leaf), 2u);
    for (PeerId n : g.neighbors(leaf)) {
      EXPECT_TRUE(is_ultrapeer(cfg, n));
    }
  }
}

TEST(Generators, TwoTierViaModelEnum) {
  util::Rng rng(22);
  GeneratorConfig cfg;
  cfg.model = Model::kTwoTier;
  cfg.nodes = 400;
  const Graph g = generate(cfg, rng);
  EXPECT_EQ(g.node_count(), 400u);
  EXPECT_TRUE(g.is_connected_over_active());
}

TEST(Generators, TwoTierRejectsBadConfig) {
  util::Rng rng(23);
  TwoTierConfig cfg;
  cfg.nodes = 100;
  cfg.ultrapeers = 2;  // smaller than core seed
  EXPECT_THROW(two_tier_topology(cfg, rng), std::invalid_argument);
  cfg.ultrapeers = 200;  // more ultrapeers than nodes
  EXPECT_THROW(two_tier_topology(cfg, rng), std::invalid_argument);
}

TEST(Generators, TwoTierFloodCoversLeavesThroughCore) {
  util::Rng rng(24);
  TwoTierConfig cfg;
  cfg.nodes = 300;
  cfg.ultrapeers = 60;
  const Graph g = two_tier_topology(cfg, rng);
  // A flood from a leaf must still blanket the overlay within TTL 7
  // (leaf -> ultrapeer core -> all leaves).
  const auto p = flood_coverage(g, 299, 7);
  EXPECT_GT(p.total_reach(), 290.0);
}

}  // namespace
}  // namespace ddp::topology
