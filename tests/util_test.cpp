// Unit tests for the deterministic utility layer: RNG, distributions,
// streaming statistics, histograms, tables, config parsing, the Zipf
// sampler and the sliding-rate windows that back DD-POLICE's monitors.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "util/config.hpp"
#include "util/rate_window.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/types.hpp"
#include "util/zipf.hpp"

namespace ddp::util {
namespace {

// ---------------------------------------------------------------- types

TEST(Types, MinuteConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(minutes(1.0), 60.0);
  EXPECT_DOUBLE_EQ(minutes(2.5), 150.0);
  EXPECT_DOUBLE_EQ(to_minutes(minutes(7.25)), 7.25);
}

TEST(Types, InvalidPeerIsSentinel) {
  EXPECT_EQ(kInvalidPeer, std::numeric_limits<PeerId>::max());
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsOrderIndependent) {
  Rng m1(99), m2(99);
  Rng a1 = m1.fork("alpha");
  (void)m1.fork("beta");
  Rng b2 = m2.fork("beta");
  Rng a2 = m2.fork("alpha");
  (void)b2;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a1.next_u32(), a2.next_u32());
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng m(7);
  Rng a = m.fork("x");
  Rng b = m.fork("y");
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng r(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t v = r.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BelowZeroOrOneReturnsZero) {
  Rng r(6);
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(r.range(9, 9), 9);
  EXPECT_EQ(r.range(5, 3), 5);  // degenerate: lo returned
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(8);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_FALSE(r.chance(-1.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_TRUE(r.chance(2.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(11);
  StreamingStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalTargetsArithmeticMoments) {
  Rng r(12);
  StreamingStats s;
  // The paper's churn parameters: mean 10 (minutes), variance 5.
  for (int i = 0; i < 200000; ++i) s.add(r.lognormal_mean_var(10.0, 5.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.variance(), 5.0, 0.4);
}

TEST(Rng, ParetoMeanMatches) {
  Rng r(13);
  // shape 3, scale 2 -> mean = shape*scale/(shape-1) = 3.
  StreamingStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.pareto(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 3.0), 2.0);
}

class PoissonRateTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonRateTest, MeanAndVarianceMatchRate) {
  const double rate = GetParam();
  Rng r(static_cast<std::uint64_t>(rate * 1000) + 17);
  StreamingStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.poisson(rate));
  EXPECT_NEAR(s.mean(), rate, std::max(0.05, rate * 0.05));
  EXPECT_NEAR(s.variance(), rate, std::max(0.2, rate * 0.12));
}

INSTANTIATE_TEST_SUITE_P(Rates, PoissonRateTest,
                         ::testing::Values(0.3, 1.0, 5.0, 20.0, 100.0));

TEST(Rng, PoissonZeroRate) {
  Rng r(14);
  EXPECT_EQ(r.poisson(0.0), 0u);
  EXPECT_EQ(r.poisson(-1.0), 0u);
}

TEST(Rng, HashTagIsStable) {
  EXPECT_EQ(hash_tag("churn"), hash_tag("churn"));
  EXPECT_NE(hash_tag("churn"), hash_tag("workload"));
}

// ---------------------------------------------------------------- stats

TEST(StreamingStats, MatchesNaiveComputation) {
  Rng r(20);
  std::vector<double> xs;
  StreamingStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-5, 5);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StreamingStats, MergeEqualsSequential) {
  Rng r(21);
  StreamingStats whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = r.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinningAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_DOUBLE_EQ(h.total_weight(), 100.0);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_DOUBLE_EQ(h.bin_weight(b), 10.0);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.6);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1e-9);
}

TEST(Histogram, OverflowUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0, 3.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 3.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(TimeSeries, CrossingTimes) {
  TimeSeries ts;
  for (int i = 0; i <= 10; ++i) ts.add(i, i * 10.0);  // 0,10,...,100
  EXPECT_DOUBLE_EQ(ts.first_time_at_or_above(35.0), 4.0);
  EXPECT_DOUBLE_EQ(ts.first_time_at_or_below(20.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.first_time_at_or_below(20.0, 3.0), -1.0);
  EXPECT_DOUBLE_EQ(ts.first_time_at_or_above(1000.0), -1.0);
}

TEST(TimeSeries, TailMeanAndMax) {
  TimeSeries ts;
  for (int i = 0; i < 8; ++i) ts.add(i, i < 4 ? 100.0 : 20.0);
  EXPECT_DOUBLE_EQ(ts.tail_mean(0.5), 20.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 100.0);
  TimeSeries empty;
  EXPECT_DOUBLE_EQ(empty.tail_mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max_value(), 0.0);
}

TEST(Quantile, ExactSmallVectors) {
  EXPECT_DOUBLE_EQ(quantile({5.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

// ---------------------------------------------------------------- table

TEST(Table, AlignedRendering) {
  Table t({"a", "long_header"});
  t.row().cell(std::int64_t{1}).cell("x");
  t.row().cell(std::int64_t{22}).cell("yy");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"v"});
  t.row().cell("plain");
  t.row().cell("with,comma");
  t.row().cell("with\"quote");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
}

TEST(Table, DoubleFormatting) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_EQ(format_double(-0.25, 1), "-0.2");
  EXPECT_EQ(format_double(3.0, 0), "3");
}

// --------------------------------------------------------------- config

TEST(Config, Truthiness) {
  EXPECT_TRUE(is_truthy("1"));
  EXPECT_TRUE(is_truthy("true"));
  EXPECT_TRUE(is_truthy("YES"));
  EXPECT_TRUE(is_truthy("On"));
  EXPECT_FALSE(is_truthy("0"));
  EXPECT_FALSE(is_truthy("no"));
  EXPECT_FALSE(is_truthy(""));
}

TEST(Config, OptionsParse) {
  const char* argv[] = {"prog", "peers=100", "rate=2.5", "flag=yes", "loose"};
  Options o(5, argv);
  EXPECT_EQ(o.get("peers", std::int64_t{0}), 100);
  EXPECT_DOUBLE_EQ(o.get("rate", 0.0), 2.5);
  EXPECT_TRUE(o.get("flag", false));
  EXPECT_EQ(o.get("missing", std::string("dflt")), "dflt");
  EXPECT_FALSE(o.has("missing"));
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "loose");
}

TEST(Config, OptionsBadNumberFallsBack) {
  const char* argv[] = {"prog", "n=abc"};
  Options o(2, argv);
  EXPECT_EQ(o.get("n", std::int64_t{7}), 7);
  EXPECT_DOUBLE_EQ(o.get("n", 1.5), 1.5);
}

TEST(Config, EnvSeedFallback) {
  unsetenv("DDP_SEED");
  EXPECT_EQ(env_seed(42), 42u);
  setenv("DDP_SEED", "777", 1);
  EXPECT_EQ(env_seed(42), 777u);
  unsetenv("DDP_SEED");
}

// ----------------------------------------------------------------- zipf

TEST(Zipf, UniformWhenThetaZero) {
  ZipfSampler z(4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(z.pmf(i), 0.25, 1e-12);
}

TEST(Zipf, PmfSumsToOneAndDecreases) {
  ZipfSampler z(1000, 0.8);
  double sum = 0.0;
  for (std::size_t i = 0; i < 1000; ++i) {
    sum += z.pmf(i);
    if (i > 0) EXPECT_LE(z.pmf(i), z.pmf(i - 1) + 1e-15);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, SampleFrequenciesMatchPmf) {
  ZipfSampler z(50, 1.0);
  Rng r(30);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(r)];
  for (std::size_t rank : {0u, 1u, 5u, 20u}) {
    EXPECT_NEAR(static_cast<double>(counts[rank]) / n, z.pmf(rank),
                0.05 * z.pmf(0) + 0.002);
  }
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

// ---------------------------------------------------------- rate window

TEST(RateWindow, CountsWithinWindow) {
  RateWindow w(60.0, 60);
  w.add(0.0, 5.0);
  w.add(30.0, 3.0);
  EXPECT_DOUBLE_EQ(w.total(59.0), 8.0);
  EXPECT_DOUBLE_EQ(w.per_minute(59.0), 8.0);
}

TEST(RateWindow, ExpiresOldEvents) {
  RateWindow w(60.0, 60);
  w.add(0.0, 10.0);
  w.add(50.0, 1.0);
  // At t=90 the t=0 bucket is out of [30, 90].
  EXPECT_DOUBLE_EQ(w.total(90.0), 1.0);
  // At t=200 everything expired.
  EXPECT_DOUBLE_EQ(w.total(200.0), 0.0);
}

TEST(RateWindow, SubMinuteWindowScalesPerMinute) {
  RateWindow w(30.0, 30);
  w.add(0.0, 10.0);
  EXPECT_DOUBLE_EQ(w.per_minute(10.0), 20.0);  // 10 in 30 s -> 20/min
}

TEST(RateWindow, ResetForgets) {
  RateWindow w(60.0, 60);
  w.add(5.0, 9.0);
  w.reset();
  EXPECT_DOUBLE_EQ(w.total(6.0), 0.0);
}

TEST(RateWindow, SteadyRateMeasuresCorrectly) {
  RateWindow w(60.0, 60);
  // 100 events/s for 3 minutes; windowed total should settle at 6000.
  for (int t = 0; t < 180; ++t) w.add(static_cast<double>(t), 100.0);
  EXPECT_NEAR(w.total(179.0), 6000.0, 101.0);
}

TEST(RateWindow, RejectsBadConstruction) {
  EXPECT_THROW(RateWindow(0.0, 10), std::invalid_argument);
  EXPECT_THROW(RateWindow(60.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ddp::util
