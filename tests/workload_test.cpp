// Workload substrate tests: the Zipf content/replication model, the
// synthetic trace generator (the stand-in for the paper's 24 h Gnutella
// capture) and the churn model's lifetime distributions.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "topology/generators.hpp"
#include "util/stats.hpp"
#include "workload/churn.hpp"
#include "workload/content.hpp"
#include "workload/trace.hpp"

namespace ddp::workload {
namespace {

// -------------------------------------------------------------- content

TEST(Content, PlacementIsDeterministic) {
  ContentConfig cfg;
  cfg.objects = 500;
  const ContentModel a(cfg, 1000), b(cfg, 1000);
  for (ObjectId o = 0; o < 100; ++o) {
    EXPECT_EQ(a.peer_has(7, o), b.peer_has(7, o));
  }
}

TEST(Content, ReplicationMatchesConfiguredMean) {
  ContentConfig cfg;
  cfg.objects = 2000;
  cfg.mean_replicas = 20.0;
  const ContentModel m(cfg, 1000);
  double total = 0.0;
  for (ObjectId o = 0; o < 2000; ++o) total += m.expected_replicas(o);
  EXPECT_NEAR(total / 2000.0, 20.0, 1.0);
}

TEST(Content, PopularObjectsMoreReplicated) {
  ContentConfig cfg;
  cfg.objects = 1000;
  const ContentModel m(cfg, 2000);
  EXPECT_GT(m.replication_ratio(0), m.replication_ratio(500));
  EXPECT_GT(m.replication_ratio(500), 0.0);
}

TEST(Content, EmpiricalPlacementMatchesRatio) {
  ContentConfig cfg;
  cfg.objects = 50;
  cfg.mean_replicas = 100.0;
  const ContentModel m(cfg, 5000);
  for (ObjectId o : {ObjectId{0}, ObjectId{10}, ObjectId{49}}) {
    std::size_t count = 0;
    for (PeerId p = 0; p < 5000; ++p) count += m.peer_has(p, o);
    const double expected = m.replication_ratio(o) * 5000.0;
    EXPECT_NEAR(static_cast<double>(count), expected,
                4.0 * std::sqrt(expected + 1.0));
  }
}

TEST(Content, HitProbabilityMonotoneInReach) {
  ContentConfig cfg;
  const ContentModel m(cfg, 2000);
  double prev = -1.0;
  for (double reach : {0.0, 10.0, 100.0, 500.0, 1900.0}) {
    const double p = m.average_hit_probability(reach);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(m.average_hit_probability(0.0), 0.0);
}

TEST(Content, PerObjectHitProbability) {
  ContentConfig cfg;
  cfg.objects = 100;
  const ContentModel m(cfg, 1000);
  EXPECT_DOUBLE_EQ(m.hit_probability(0, 0.0), 0.0);
  EXPECT_GT(m.hit_probability(0, 500.0), m.hit_probability(99, 500.0));
  EXPECT_DOUBLE_EQ(m.hit_probability(9999, 500.0), 0.0);  // unknown object
}

TEST(Content, AverageHitInterpolationStaysInBounds) {
  ContentConfig cfg;
  const ContentModel m(cfg, 300);
  for (double reach = 0.0; reach <= 400.0; reach += 7.3) {
    const double p = m.average_hit_probability(reach);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Content, QueryObjectsFollowPopularity) {
  ContentConfig cfg;
  cfg.objects = 100;
  cfg.popularity_theta = 1.0;
  const ContentModel m(cfg, 100);
  util::Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[m.sample_query_object(rng)];
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], 50000 / 100);
}

TEST(Content, SharedCountReasonable) {
  ContentConfig cfg;
  cfg.objects = 1000;
  cfg.mean_replicas = 50.0;
  const ContentModel m(cfg, 1000);
  // Expected objects per peer = objects * mean_replicas / peers = 50.
  util::StreamingStats s;
  for (PeerId p = 0; p < 50; ++p) {
    s.add(static_cast<double>(m.shared_count(p)));
  }
  EXPECT_NEAR(s.mean(), 50.0, 10.0);
}

// ---------------------------------------------------------------- trace

TEST(Trace, GeneratesRequestedCount) {
  TraceConfig cfg;
  cfg.queries_per_second = 100.0;
  TraceGenerator gen(cfg);
  util::Rng rng(6);
  const auto recs = gen.generate(5000, rng);
  EXPECT_EQ(recs.size(), 5000u);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i].timestamp, recs[i - 1].timestamp);
  }
}

TEST(Trace, RespectsDurationBound) {
  TraceConfig cfg;
  cfg.duration_seconds = 10.0;
  cfg.queries_per_second = 1.0;
  TraceGenerator gen(cfg);
  util::Rng rng(7);
  const auto recs = gen.generate(100000, rng);
  EXPECT_LT(recs.size(), 40u);  // ~10 expected, strongly bounded
  for (const auto& r : recs) EXPECT_LE(r.timestamp, 10.0);
}

TEST(Trace, WriteReadRoundTrip) {
  TraceConfig cfg;
  TraceGenerator gen(cfg);
  util::Rng rng(8);
  const auto recs = gen.generate(200, rng);
  std::stringstream ss;
  write_trace(ss, recs);
  const auto back = read_trace(ss);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_NEAR(back[i].timestamp, recs[i].timestamp, 0.001);
    EXPECT_EQ(back[i].query, recs[i].query);
  }
}

TEST(Trace, MalformedLinesSkipped) {
  std::stringstream ss;
  ss << "1.5\tgood query\n"
     << "no tab here\n"
     << "abc\talso bad timestamp\n"
     << "\n"
     << "2.5\tanother good\n";
  const auto recs = read_trace(ss);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].query, "good query");
  EXPECT_EQ(recs[1].query, "another good");
}

TEST(Trace, StatsShowPopularitySkew) {
  TraceConfig cfg;
  cfg.vocabulary = 10000;
  cfg.popularity_theta = 0.9;
  TraceGenerator gen(cfg);
  util::Rng rng(9);
  const auto recs = gen.generate(20000, rng);
  const auto stats = analyze_trace(recs);
  EXPECT_EQ(stats.records, recs.size());
  EXPECT_GT(stats.unique_queries, 100u);
  EXPECT_LT(stats.unique_queries, recs.size());
  // Zipf 0.9: the top-10 strings carry far more than the uniform share.
  EXPECT_GT(stats.top10_share, 10.0 * 10 / 10000.0);
  // Query strings average near the trace's ~9 bytes (112 MB / 13M).
  EXPECT_GT(stats.mean_query_bytes, 4.0);
  EXPECT_LT(stats.mean_query_bytes, 14.0);
}

TEST(Trace, EmptyStats) {
  const auto stats = analyze_trace({});
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.unique_queries, 0u);
}

// ---------------------------------------------------------------- churn

TEST(Churn, LognormalMatchesPaperMoments) {
  ChurnConfig cfg;  // defaults: mean 60 min, var 30 min^2 (in seconds)
  ChurnModel m(cfg);
  util::Rng rng(10);
  util::StreamingStats s;
  for (int i = 0; i < 100000; ++i) s.add(m.sample_lifetime(rng));
  EXPECT_NEAR(s.mean(), cfg.mean_lifetime, cfg.mean_lifetime * 0.02);
  EXPECT_NEAR(s.variance(), cfg.lifetime_variance, cfg.lifetime_variance * 0.1);
}

TEST(Churn, ExponentialMeanMatches) {
  ChurnConfig cfg;
  cfg.distribution = LifetimeDistribution::kExponential;
  cfg.mean_lifetime = 600.0;
  ChurnModel m(cfg);
  util::Rng rng(11);
  util::StreamingStats s;
  for (int i = 0; i < 100000; ++i) s.add(m.sample_lifetime(rng));
  EXPECT_NEAR(s.mean(), 600.0, 15.0);
}

TEST(Churn, ParetoMeanMatches) {
  ChurnConfig cfg;
  cfg.distribution = LifetimeDistribution::kPareto;
  cfg.mean_lifetime = 600.0;
  cfg.pareto_shape = 2.5;
  ChurnModel m(cfg);
  util::Rng rng(12);
  util::StreamingStats s;
  for (int i = 0; i < 200000; ++i) s.add(m.sample_lifetime(rng));
  EXPECT_NEAR(s.mean(), 600.0, 30.0);
}

TEST(Churn, LifetimesArePositive) {
  for (auto dist : {LifetimeDistribution::kLognormal,
                    LifetimeDistribution::kExponential,
                    LifetimeDistribution::kPareto}) {
    ChurnConfig cfg;
    cfg.distribution = dist;
    ChurnModel m(cfg);
    util::Rng rng(13);
    for (int i = 0; i < 1000; ++i) EXPECT_GE(m.sample_lifetime(rng), 1.0);
  }
}

TEST(Churn, OfflineGapPositiveWithConfiguredMean) {
  ChurnConfig cfg;
  cfg.mean_offline = 300.0;
  ChurnModel m(cfg);
  util::Rng rng(14);
  util::StreamingStats s;
  for (int i = 0; i < 50000; ++i) {
    const double v = m.sample_offline(rng);
    EXPECT_GE(v, 1.0);
    s.add(v);
  }
  EXPECT_NEAR(s.mean(), 300.0, 10.0);
}

TEST(Churn, ConnectJoiningPeerAddsLinks) {
  util::Rng rng(15);
  topology::Graph g = topology::paper_topology(100, rng);
  const PeerId joiner = g.add_node();
  ChurnConfig cfg;
  cfg.rejoin_links = 3;
  ChurnModel m(cfg);
  const std::size_t added = m.connect_joining_peer(g, joiner, rng);
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(g.degree(joiner), 3u);
  for (PeerId n : g.neighbors(joiner)) EXPECT_NE(n, joiner);
}

TEST(Churn, ConnectJoiningPeerHandlesTinyOverlay) {
  topology::Graph g(2);
  util::Rng rng(16);
  ChurnConfig cfg;
  cfg.rejoin_links = 3;
  ChurnModel m(cfg);
  const std::size_t added = m.connect_joining_peer(g, 0, rng);
  EXPECT_EQ(added, 1u);  // only one possible partner
  EXPECT_TRUE(g.has_edge(0, 1));
}

}  // namespace
}  // namespace ddp::workload
